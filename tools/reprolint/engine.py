"""Core machinery of the :mod:`tools.reprolint` static analyzer.

The engine is deliberately small and dependency-free (stdlib :mod:`ast`
only).  It owns four concerns:

* :class:`Finding` — one immutable diagnostic, sortable and JSON-ready;
* :class:`Rule` — the base class every rule family subclasses, plus the
  :func:`register` decorator and :func:`all_rules` registry accessor;
* :class:`FileContext` — a parsed file with the cross-rule facts every
  rule needs (parent links, import alias resolution, suppression
  comments, path-based scoping);
* :func:`run_source` / :func:`run_paths` — the two entry points used by
  the CLI, the test suite and ``python -m repro lint``.

Suppression syntax (checked per physical line of the finding)::

    x = random.random()          # reprolint: disable=RPL001
    y = eval_thing()             # reprolint: disable=RPL001,RPL050
    # reprolint: disable-next=RPL020
    def f(acc=[]): ...
    anything_at_all()            # reprolint: disable=all
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "Rule",
    "FileContext",
    "register",
    "all_rules",
    "run_source",
    "run_paths",
]

#: ``# reprolint: disable=RPL001,RPL002`` (or ``disable=all``) — applies to
#: the physical line it appears on.
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9,\s]+)")
#: ``# reprolint: disable-next=...`` — applies to the following line.
_SUPPRESS_NEXT_RE = re.compile(r"#\s*reprolint:\s*disable-next=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a rule.

    Sortable (by path, then line/column, then code) so reports and
    baselines are deterministic.

    >>> f = Finding(path="src/x.py", line=3, col=0, code="RPL040",
    ...             name="bare-except", family="exceptions",
    ...             message="bare 'except:' swallows SystemExit")
    >>> f.key
    'src/x.py:RPL040'
    >>> f.to_dict()["code"]
    'RPL040'
    """

    path: str
    line: int
    col: int
    code: str
    name: str
    family: str
    message: str

    @property
    def key(self) -> str:
        """Baseline fingerprint: ``path:code`` (line numbers may drift)."""
        return f"{self.path}:{self.code}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping of every field."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "name": self.name,
            "family": self.family,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line human-readable form used by the CLI."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} [{self.name}] {self.message}"


#: Registry of rule classes, keyed by code (populated by :func:`register`).
_REGISTRY: Dict[str, "Rule"] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the global registry.

    >>> @register
    ... class _Demo(Rule):
    ...     code, name, family = "RPL999", "demo", "demo"
    ...     description = "demo rule"
    ...     def check(self, ctx):
    ...         return iter(())
    >>> all_rules()[-1].code
    'RPL999'
    >>> _ = _REGISTRY.pop("RPL999")  # undo the demo registration
    """
    instance = cls()
    if instance.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {instance.code}")
    _REGISTRY[instance.code] = instance
    return cls


def all_rules() -> List["Rule"]:
    """Every registered rule, sorted by code.

    >>> codes = [r.code for r in all_rules()]
    >>> codes == sorted(codes)
    True
    """
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects (usually via the :meth:`finding`
    helper, which fills in position and identity fields).

    >>> class _R(Rule):
    ...     code, name, family = "RPL998", "noop", "demo"
    ...     description = "never fires"
    ...     def check(self, ctx):
    ...         return iter(())
    >>> _R().code
    'RPL998'
    """

    #: Stable diagnostic code, e.g. ``"RPL001"``.
    code: str = ""
    #: Short kebab-case name, e.g. ``"unseeded-random"``.
    name: str = ""
    #: Family grouping used in reports, e.g. ``"determinism"``.
    family: str = ""
    #: One-sentence rationale shown by ``--list-rules`` and the docs.
    description: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` at ``node``'s position."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            name=self.name,
            family=self.family,
            message=message,
        )


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, 1):
        m = _SUPPRESS_RE.search(line)
        if m:
            codes = {c.strip().upper() for c in m.group(1).split(",") if c.strip()}
            out.setdefault(i, set()).update(codes)
        m = _SUPPRESS_NEXT_RE.search(line)
        if m:
            codes = {c.strip().upper() for c in m.group(1).split(",") if c.strip()}
            out.setdefault(i + 1, set()).update(codes)
    return out


class FileContext:
    """One parsed source file plus the shared facts rules query.

    ``path`` is a repo-relative POSIX path label; rules use it for
    scoping decisions (``in_repro_src``, ``in_observability``), so fixture
    tests can opt snippets into sim-path rules by passing a virtual
    ``src/repro/...`` label.

    >>> ctx = FileContext("src/repro/demo.py", "import time\\n")
    >>> ctx.in_repro_src
    True
    >>> ctx.in_observability
    False
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source)
        self.lines = source.splitlines()
        self.suppressions = _parse_suppressions(self.lines)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        #: ``alias -> dotted module/symbol`` from import statements.
        self.imports: Dict[str, str] = {}
        #: ``alias -> submodule name`` for repro.observability submodules.
        self.obs_aliases: Dict[str, str] = {}
        self._collect_imports()

    # -- path scoping ------------------------------------------------------

    @property
    def in_repro_src(self) -> bool:
        """True for files under ``src/repro/`` (the simulation library)."""
        return self.path.startswith("src/repro/")

    @property
    def in_observability(self) -> bool:
        """True for the observability package itself (exempt from gating)."""
        return self.path.startswith("src/repro/observability/")

    # -- tree navigation ---------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """Immediate parent of ``node`` (None for the module)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of ``node``, innermost first, up to the module."""
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Nearest enclosing function/async-function definition, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    # -- imports -----------------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self.imports[bound] = alias.name if alias.asname else bound
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    if ".observability." in f".{alias.name}.":
                        tail = alias.name.rsplit(".", 1)[-1]
                        if tail in ("metrics", "trace", "manifest"):
                            self.obs_aliases[alias.asname or alias.name] = tail
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                base = ("." * node.level) + module
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{base}.{alias.name}" if base else alias.name
                    if module.split(".")[-1] == "observability" or module.endswith(
                        ".observability"
                    ):
                        if alias.name in ("metrics", "trace", "manifest"):
                            self.obs_aliases[bound] = alias.name

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a Name/Attribute chain with aliases resolved.

        ``np.random.rand`` (after ``import numpy as np``) resolves to
        ``"numpy.random.rand"``; ``datetime.now`` after ``from datetime
        import datetime`` resolves to ``"datetime.datetime.now"``.
        Returns None for anything that is not a plain dotted chain.
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = self.imports.get(cur.id, cur.id)
        parts.append(base)
        return ".".join(reversed(parts))

    # -- suppression -------------------------------------------------------

    def suppressed(self, finding: Finding) -> bool:
        """True when an inline comment disables this finding's code."""
        codes = self.suppressions.get(finding.line)
        if not codes:
            return False
        return "ALL" in codes or finding.code.upper() in codes


def run_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Run the rule set over one source string; returns sorted findings.

    The workhorse behind both the CLI and the fixture tests.  Inline
    suppression comments are honored here, so a suppressed finding never
    reaches a report or a baseline.

    >>> run_source("def f(acc=[]):\\n    return acc\\n", path="x.py")[0].code
    'RPL020'
    >>> run_source("def f(acc=[]):  # reprolint: disable=RPL020\\n    return acc\\n",
    ...            path="x.py")
    []
    """
    ctx = FileContext(path, source)
    chosen = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in chosen:
        for f in rule.check(ctx):
            if not ctx.suppressed(f):
                findings.append(f)
    return sorted(findings)


def iter_py_files(paths: Sequence[str], root: Path) -> Iterator[Tuple[str, Path]]:
    """Yield ``(label, path)`` for every ``.py`` file under ``paths``.

    Labels are POSIX-style and relative to ``root`` when possible, so
    findings and baselines are machine-independent.
    """
    for raw in paths:
        p = Path(raw)
        if not p.is_absolute():
            p = root / p
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if "__pycache__" in c.parts:
                continue
            try:
                label = c.resolve().relative_to(root).as_posix()
            except ValueError:
                label = c.as_posix()
            yield label, c


def run_paths(
    paths: Sequence[str],
    root: Optional[Path] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Run the rule set over files/directories; returns sorted findings.

    >>> import pathlib, tempfile
    >>> d = tempfile.mkdtemp()
    >>> _ = pathlib.Path(d, "bad.py").write_text("def f(x={}):\\n    return x\\n")
    >>> [f.code for f in run_paths([d], root=pathlib.Path(d))]
    ['RPL020']
    """
    root = (root or Path.cwd()).resolve()
    findings: List[Finding] = []
    for label, p in iter_py_files(paths, root):
        source = p.read_text(encoding="utf-8")
        try:
            findings.extend(run_source(source, path=label, rules=rules))
        except SyntaxError as exc:  # surface, don't crash the whole run
            findings.append(
                Finding(
                    path=label,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    code="RPL000",
                    name="syntax-error",
                    family="engine",
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return sorted(findings)
