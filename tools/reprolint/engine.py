"""Core machinery of the :mod:`tools.reprolint` static analyzer.

The engine is deliberately small and dependency-free (stdlib :mod:`ast`
only).  It owns four concerns:

* :class:`Finding` — one immutable diagnostic, sortable and JSON-ready;
* :class:`Rule` — the base class every rule family subclasses, plus the
  :func:`register` decorator and :func:`all_rules` registry accessor;
* :class:`FileContext` — a parsed file with the cross-rule facts every
  rule needs (parent links, import alias resolution, suppression
  comments, path-based scoping);
* :func:`run_source` / :func:`run_paths` — the two entry points used by
  the CLI, the test suite and ``python -m repro lint``.

Suppression syntax (checked per physical line of the finding)::

    x = random.random()          # reprolint: disable=RPL001
    y = eval_thing()             # reprolint: disable=RPL001,RPL050
    # reprolint: disable-next=RPL020
    def f(acc=[]): ...
    anything_at_all()            # reprolint: disable=all
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "Rule",
    "ProjectRule",
    "FileContext",
    "SkippedFile",
    "register",
    "all_rules",
    "file_rules",
    "project_rules",
    "run_source",
    "run_paths",
    "discover_files",
]

#: ``# reprolint: disable=RPL001,RPL002`` (or ``disable=all``) — applies to
#: the physical line it appears on.
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9,\s]+)")
#: ``# reprolint: disable-next=...`` — applies to the following line.
_SUPPRESS_NEXT_RE = re.compile(r"#\s*reprolint:\s*disable-next=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a rule.

    Sortable (by path, then line/column, then code) so reports and
    baselines are deterministic.

    >>> f = Finding(path="src/x.py", line=3, col=0, code="RPL040",
    ...             name="bare-except", family="exceptions",
    ...             message="bare 'except:' swallows SystemExit")
    >>> f.key
    'src/x.py:RPL040'
    >>> f.to_dict()["code"]
    'RPL040'
    """

    path: str
    line: int
    col: int
    code: str
    name: str
    family: str
    message: str

    @property
    def key(self) -> str:
        """Baseline fingerprint: ``path:code`` (line numbers may drift)."""
        return f"{self.path}:{self.code}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping of every field."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "name": self.name,
            "family": self.family,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line human-readable form used by the CLI."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} [{self.name}] {self.message}"


#: Registry of rule classes, keyed by code (populated by :func:`register`).
_REGISTRY: Dict[str, "Rule"] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the global registry.

    >>> @register
    ... class _Demo(Rule):
    ...     code, name, family = "RPL999", "demo", "demo"
    ...     description = "demo rule"
    ...     def check(self, ctx):
    ...         return iter(())
    >>> all_rules()[-1].code
    'RPL999'
    >>> _ = _REGISTRY.pop("RPL999")  # undo the demo registration
    """
    instance = cls()
    if instance.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {instance.code}")
    _REGISTRY[instance.code] = instance
    return cls


def all_rules() -> List["Rule"]:
    """Every registered rule, sorted by code.

    >>> codes = [r.code for r in all_rules()]
    >>> codes == sorted(codes)
    True
    """
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def file_rules() -> List["Rule"]:
    """The per-file rules only (everything that is not a project rule).

    >>> all(not r.project for r in file_rules())
    True
    """
    return [r for r in all_rules() if not r.project]


def project_rules() -> List["Rule"]:
    """The whole-program rules (run once per project, not per file).

    >>> all(r.project for r in project_rules())
    True
    """
    return [r for r in all_rules() if r.project]


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects (usually via the :meth:`finding`
    helper, which fills in position and identity fields).

    >>> class _R(Rule):
    ...     code, name, family = "RPL998", "noop", "demo"
    ...     description = "never fires"
    ...     def check(self, ctx):
    ...         return iter(())
    >>> _R().code
    'RPL998'
    """

    #: Stable diagnostic code, e.g. ``"RPL001"``.
    code: str = ""
    #: Short kebab-case name, e.g. ``"unseeded-random"``.
    name: str = ""
    #: Family grouping used in reports, e.g. ``"determinism"``.
    family: str = ""
    #: One-sentence rationale shown by ``--list-rules`` and the docs.
    description: str = ""
    #: True for whole-program rules that implement :meth:`check_project`.
    project: bool = False
    #: Minimal snippet that trips the rule (shown by ``--explain``).
    example_bad: str = ""
    #: The sanctioned counterpart that stays clean (shown by ``--explain``).
    example_good: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` at ``node``'s position."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            name=self.name,
            family=self.family,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    A project rule sees the cross-module
    :class:`~tools.reprolint.project.ProjectContext` (symbol table, call
    graph, taint fixpoint) instead of one file, so it runs once per
    analysis — after every per-file pass — via :meth:`check_project`.
    Its per-file :meth:`check` is deliberately inert, which keeps
    :func:`run_source` fixture tests for per-file rules unaffected.

    >>> class _P(ProjectRule):
    ...     code, name, family = "RPL997", "demo-project", "demo"
    ...     description = "never fires"
    ...     def check_project(self, project):
    ...         return iter(())
    >>> _P().project
    True
    >>> list(_P().check(None))
    []
    """

    project = True

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Project rules yield nothing in the per-file pass."""
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings for the whole project (see ``project.py``)."""
        raise NotImplementedError


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, 1):
        m = _SUPPRESS_RE.search(line)
        if m:
            codes = {c.strip().upper() for c in m.group(1).split(",") if c.strip()}
            out.setdefault(i, set()).update(codes)
        m = _SUPPRESS_NEXT_RE.search(line)
        if m:
            codes = {c.strip().upper() for c in m.group(1).split(",") if c.strip()}
            out.setdefault(i + 1, set()).update(codes)
    return out


class FileContext:
    """One parsed source file plus the shared facts rules query.

    ``path`` is a repo-relative POSIX path label; rules use it for
    scoping decisions (``in_repro_src``, ``in_observability``), so fixture
    tests can opt snippets into sim-path rules by passing a virtual
    ``src/repro/...`` label.

    >>> ctx = FileContext("src/repro/demo.py", "import time\\n")
    >>> ctx.in_repro_src
    True
    >>> ctx.in_observability
    False
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source)
        self.lines = source.splitlines()
        self.suppressions = _parse_suppressions(self.lines)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        #: ``alias -> dotted module/symbol`` from import statements.
        self.imports: Dict[str, str] = {}
        #: ``alias -> submodule name`` for repro.observability submodules.
        self.obs_aliases: Dict[str, str] = {}
        self._collect_imports()

    # -- path scoping ------------------------------------------------------

    @property
    def in_repro_src(self) -> bool:
        """True for files under ``src/repro/`` (the simulation library)."""
        return self.path.startswith("src/repro/")

    @property
    def in_observability(self) -> bool:
        """True for the observability package itself (exempt from gating)."""
        return self.path.startswith("src/repro/observability/")

    # -- tree navigation ---------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """Immediate parent of ``node`` (None for the module)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of ``node``, innermost first, up to the module."""
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Nearest enclosing function/async-function definition, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    # -- imports -----------------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self.imports[bound] = alias.name if alias.asname else bound
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    if ".observability." in f".{alias.name}.":
                        tail = alias.name.rsplit(".", 1)[-1]
                        if tail in ("metrics", "trace", "manifest"):
                            self.obs_aliases[alias.asname or alias.name] = tail
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                base = ("." * node.level) + module
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if not base:
                        self.imports[bound] = alias.name
                    elif base.endswith("."):
                        # ``from . import x`` / ``from .. import x`` — the
                        # level dots already end the base; no separator
                        self.imports[bound] = base + alias.name
                    else:
                        self.imports[bound] = f"{base}.{alias.name}"
                    if module.split(".")[-1] == "observability" or module.endswith(
                        ".observability"
                    ):
                        if alias.name in ("metrics", "trace", "manifest"):
                            self.obs_aliases[bound] = alias.name

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a Name/Attribute chain with aliases resolved.

        ``np.random.rand`` (after ``import numpy as np``) resolves to
        ``"numpy.random.rand"``; ``datetime.now`` after ``from datetime
        import datetime`` resolves to ``"datetime.datetime.now"``.
        Returns None for anything that is not a plain dotted chain.
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = self.imports.get(cur.id, cur.id)
        parts.append(base)
        return ".".join(reversed(parts))

    # -- suppression -------------------------------------------------------

    def suppressed(self, finding: Finding) -> bool:
        """True when an inline comment disables this finding's code."""
        codes = self.suppressions.get(finding.line)
        if not codes:
            return False
        return "ALL" in codes or finding.code.upper() in codes


def run_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Run the rule set over one source string; returns sorted findings.

    The workhorse behind both the CLI and the fixture tests.  Inline
    suppression comments are honored here, so a suppressed finding never
    reaches a report or a baseline.

    >>> run_source("def f(acc=[]):\\n    return acc\\n", path="x.py")[0].code
    'RPL020'
    >>> run_source("def f(acc=[]):  # reprolint: disable=RPL020\\n    return acc\\n",
    ...            path="x.py")
    []
    """
    ctx = FileContext(path, source)
    chosen = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in chosen:
        for f in rule.check(ctx):
            if not ctx.suppressed(f):
                findings.append(f)
    return sorted(findings)


@dataclass(frozen=True, order=True)
class SkippedFile:
    """One target file that discovery declined to analyze, with the reason.

    Stray build artifacts (``__pycache__`` trees, ``.pyc`` bytecode) and
    files that do not decode as UTF-8 are skipped *explicitly* — the
    JSON report carries the count and the list, so a partial analysis is
    never silent.

    >>> SkippedFile(path="src/x.pyc", reason="compiled bytecode").to_dict()
    {'path': 'src/x.pyc', 'reason': 'compiled bytecode'}
    """

    path: str
    reason: str

    def to_dict(self) -> Dict[str, str]:
        """JSON-ready mapping of both fields."""
        return {"path": self.path, "reason": self.reason}


def _label_for(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def discover_files(
    paths: Sequence[str], root: Path
) -> Tuple[List[Tuple[str, Path]], List[SkippedFile]]:
    """Find the ``.py`` files under ``paths``, and account for the rest.

    Returns ``(files, skipped)``: ``files`` is a sorted list of
    ``(label, path)`` pairs (labels POSIX-style and relative to ``root``
    when possible, so findings and baselines are machine-independent);
    ``skipped`` records every explicitly-named non-``.py`` target
    (``.pyc`` bytecode, other stray artifacts) and every candidate that
    sits in a ``__pycache__`` tree.  Undecodable files are detected at
    read time (see :func:`run_paths` and the project driver) because
    discovery never opens files.

    >>> import pathlib, tempfile
    >>> d = pathlib.Path(tempfile.mkdtemp())
    >>> _ = (d / "ok.py").write_text("x = 1\\n")
    >>> _ = (d / "stray.pyc").write_bytes(b"\\x00")
    >>> files, skipped = discover_files([str(d), str(d / "stray.pyc")], d)
    >>> [label for label, _ in files], [s.reason for s in skipped]
    (['ok.py'], ['compiled bytecode, not source'])
    """
    files: List[Tuple[str, Path]] = []
    skipped: List[SkippedFile] = []
    seen: Set[str] = set()
    for raw in paths:
        p = Path(raw)
        if not p.is_absolute():
            p = root / p
        if p.is_dir():
            # *.pyc (and anything in __pycache__) is collected too so the
            # skip accounting is explicit, not silent
            candidates = sorted(set(p.rglob("*.py")) | set(p.rglob("*.pyc")))
        else:
            candidates = [p]
        for c in candidates:
            label = _label_for(c, root)
            if label in seen:
                continue
            if "__pycache__" in c.parts:
                seen.add(label)
                skipped.append(SkippedFile(label, "build artifact in __pycache__"))
                continue
            if c.suffix == ".pyc":
                seen.add(label)
                skipped.append(SkippedFile(label, "compiled bytecode, not source"))
                continue
            if c.suffix != ".py":
                seen.add(label)
                skipped.append(SkippedFile(label, "not a Python source file"))
                continue
            seen.add(label)
            files.append((label, c))
    return sorted(files), sorted(skipped)


def iter_py_files(paths: Sequence[str], root: Path) -> Iterator[Tuple[str, Path]]:
    """Yield ``(label, path)`` for every ``.py`` file under ``paths``.

    Back-compat wrapper over :func:`discover_files` (which also accounts
    for the files it skips).
    """
    files, _ = discover_files(paths, root)
    yield from files


def read_source(label: str, path: Path) -> Tuple[Optional[str], Optional[SkippedFile]]:
    """Read one target as UTF-8; a non-UTF-8 file becomes a skip record.

    >>> import pathlib, tempfile
    >>> d = pathlib.Path(tempfile.mkdtemp())
    >>> _ = (d / "bad.py").write_bytes(b"x = '\\xff\\xfe'\\n")
    >>> source, skip = read_source("bad.py", d / "bad.py")
    >>> source is None, skip.reason
    (True, 'not valid UTF-8')
    """
    try:
        return path.read_text(encoding="utf-8"), None
    except UnicodeDecodeError:
        return None, SkippedFile(label, "not valid UTF-8")


def run_paths(
    paths: Sequence[str],
    root: Optional[Path] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Run the per-file rule set over files/directories; sorted findings.

    Project rules (cross-file analysis) are not run here — use
    :func:`tools.reprolint.project.analyze_paths` for the full engine
    with the symbol-table pass, the cache and the process pool.

    >>> import pathlib, tempfile
    >>> d = tempfile.mkdtemp()
    >>> _ = pathlib.Path(d, "bad.py").write_text("def f(x={}):\\n    return x\\n")
    >>> [f.code for f in run_paths([d], root=pathlib.Path(d))]
    ['RPL020']
    """
    root = (root or Path.cwd()).resolve()
    findings: List[Finding] = []
    files, _ = discover_files(paths, root)
    for label, p in files:
        source, skip = read_source(label, p)
        if skip is not None:
            continue
        try:
            findings.extend(run_source(source, path=label, rules=rules))
        except SyntaxError as exc:  # surface, don't crash the whole run
            findings.append(syntax_error_finding(label, exc))
    return sorted(findings)


def syntax_error_finding(label: str, exc: SyntaxError) -> Finding:
    """The RPL000 finding for a file that failed to parse.

    >>> try:
    ...     compile("def f(:", "x.py", "exec")
    ... except SyntaxError as e:
    ...     syntax_error_finding("x.py", e).code
    'RPL000'
    """
    return Finding(
        path=label,
        line=exc.lineno or 1,
        col=exc.offset or 0,
        code="RPL000",
        name="syntax-error",
        family="engine",
        message=f"file does not parse: {exc.msg}",
    )
