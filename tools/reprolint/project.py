"""Cross-file analysis: module summaries, call graph, taint, driver.

This module turns reprolint from a per-file pattern matcher into a
project-level engine.  Four layers:

* :func:`summarize` — distills one parsed file into a picklable,
  JSON-serializable :class:`ModuleSummary` (imports, top-level functions
  and methods with their call sites, direct nondeterminism sources,
  suppression lines).  Summaries are what the incremental cache stores
  and what process-pool workers ship back, so the expensive AST walk
  happens at most once per file content.
* :class:`ProjectContext` — the cross-module symbol table built from
  summaries: import/alias resolution across files (including ``import
  x as y`` chains and re-exports through ``__init__.py``), method
  resolution through class definitions (``self.``/``cls.``/
  ``ClassName.`` and base-class walks), and the resolved call graph.
* :meth:`ProjectContext.taint` — the interprocedural determinism pass:
  a worklist fixpoint that marks every function transitively reaching
  an unseeded RNG draw or wall-clock read, with a witness chain for the
  diagnostics.  Cycles in the call graph converge because taint only
  ever grows.
* :func:`analyze_paths` — the engine driver used by the CLI and the
  benchmark: discovery (with explicit skip accounting), the
  content-hash cache, the optional ``--jobs`` process pool, per-file
  rules, and the project rules on top.

The symbol table is built over the analysis targets *plus* the standing
project roots (``src/repro`` and ``tools``) when they exist under the
analysis root, so a sim-path caller is connected to a helper two
packages away even when only one directory is being linted.  Findings
are only ever reported for target files.
"""

from __future__ import annotations

import ast
import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import (
    FileContext,
    Finding,
    Rule,
    SkippedFile,
    discover_files,
    file_rules,
    project_rules,
    run_source,
    syntax_error_finding,
)

__all__ = [
    "CallSite",
    "TaintSource",
    "FunctionInfo",
    "ClassInfo",
    "ModuleSummary",
    "ProjectContext",
    "TaintInfo",
    "AnalysisResult",
    "summarize",
    "analyze_paths",
]

#: Directories that always contribute to the symbol table when present
#: under the analysis root (even when they are not lint targets).
CONTEXT_ROOTS: Tuple[str, ...] = ("src/repro", "tools")

_MAX_RESOLVE_DEPTH = 16


def _module_name(label: str) -> Tuple[str, bool]:
    """Dotted module name (and is-package flag) for a repo-relative label.

    ``src/`` is the import root of the library (``PYTHONPATH=src``), so
    it is stripped; every other label maps positionally.

    >>> _module_name("src/repro/contracts/billing.py")
    ('repro.contracts.billing', False)
    >>> _module_name("tools/reprolint/__init__.py")
    ('tools.reprolint', True)
    >>> _module_name("scratch.py")
    ('scratch', False)
    """
    parts = label.split("/")
    if parts[0] == "src" and len(parts) > 1:
        parts = parts[1:]
    is_package = parts[-1] == "__init__.py"
    if is_package:
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [parts[-1][: -len(".py")] if parts[-1].endswith(".py") else parts[-1]]
    return ".".join(p for p in parts if p), is_package


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function, with its resolved-alias name.

    ``name`` is the dotted chain :meth:`FileContext.qualified_name`
    produced (possibly still package-relative, e.g. ``..helpers.draw``);
    the :class:`ProjectContext` resolves it to a concrete function.

    >>> CallSite(name="repro.units.kw", line=3, col=4).name
    'repro.units.kw'
    """

    name: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping."""
        return {"name": self.name, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "CallSite":
        """Inverse of :meth:`to_dict`.

        >>> CallSite.from_dict({"name": "f", "line": 1, "col": 0}).line
        1
        """
        return cls(name=str(d["name"]), line=int(d["line"]), col=int(d["col"]))


@dataclass(frozen=True)
class TaintSource:
    """One direct nondeterminism source inside a function body.

    >>> TaintSource(message="random.random() ...", line=7).line
    7
    """

    message: str
    line: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping."""
        return {"message": self.message, "line": self.line}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "TaintSource":
        """Inverse of :meth:`to_dict`.

        >>> TaintSource.from_dict({"message": "m", "line": 2}).message
        'm'
        """
        return cls(message=str(d["message"]), line=int(d["line"]))


@dataclass
class FunctionInfo:
    """Summary of one top-level function or method.

    ``qualname`` is ``"name"`` for module-level functions and
    ``"Class.name"`` for methods; nested defs and lambdas are attributed
    to their enclosing top-level function (a conservative approximation
    that keeps the call graph finite).

    >>> FunctionInfo(qualname="Site.sample", line=3).qualname
    'Site.sample'
    """

    qualname: str
    line: int
    col: int = 0
    calls: List[CallSite] = field(default_factory=list)
    taint_sources: List[TaintSource] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (stable field order)."""
        return {
            "qualname": self.qualname,
            "line": self.line,
            "col": self.col,
            "calls": [c.to_dict() for c in self.calls],
            "taint_sources": [t.to_dict() for t in self.taint_sources],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FunctionInfo":
        """Inverse of :meth:`to_dict`.

        >>> FunctionInfo.from_dict(FunctionInfo("f", 1).to_dict()).qualname
        'f'
        """
        return cls(
            qualname=str(d["qualname"]),
            line=int(d["line"]),
            col=int(d.get("col", 0)),
            calls=[CallSite.from_dict(c) for c in d.get("calls", [])],
            taint_sources=[TaintSource.from_dict(t) for t in d.get("taint_sources", [])],
        )


@dataclass
class ClassInfo:
    """Summary of one top-level class: its bases and method names.

    Bases are recorded as alias-resolved dotted names so the method
    resolver can walk inheritance across modules.

    >>> ClassInfo(name="ShardWorker", bases=["Worker"], methods=["run"]).name
    'ShardWorker'
    """

    name: str
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping."""
        return {"name": self.name, "bases": list(self.bases), "methods": list(self.methods)}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ClassInfo":
        """Inverse of :meth:`to_dict`.

        >>> ClassInfo.from_dict({"name": "C", "bases": [], "methods": []}).name
        'C'
        """
        return cls(
            name=str(d["name"]),
            bases=[str(b) for b in d.get("bases", [])],
            methods=[str(m) for m in d.get("methods", [])],
        )


@dataclass
class ModuleSummary:
    """Everything the project pass needs to know about one file.

    Deliberately flat and JSON-serializable: this is the unit the
    incremental cache stores and process-pool workers return, so a warm
    run rebuilds the whole symbol table without parsing a single file.

    >>> s = ModuleSummary(label="src/repro/x.py", module="repro.x")
    >>> ModuleSummary.from_dict(s.to_dict()).module
    'repro.x'
    """

    label: str
    module: str
    is_package: bool = False
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    suppressions: Dict[int, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (keys sorted by the cache writer)."""
        return {
            "label": self.label,
            "module": self.module,
            "is_package": self.is_package,
            "imports": dict(sorted(self.imports.items())),
            "functions": {q: f.to_dict() for q, f in sorted(self.functions.items())},
            "classes": {n: c.to_dict() for n, c in sorted(self.classes.items())},
            "suppressions": {str(k): sorted(v) for k, v in sorted(self.suppressions.items())},
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ModuleSummary":
        """Inverse of :meth:`to_dict`.

        >>> ModuleSummary.from_dict({"label": "a.py", "module": "a"}).label
        'a.py'
        """
        return cls(
            label=str(d["label"]),
            module=str(d["module"]),
            is_package=bool(d.get("is_package", False)),
            imports={str(k): str(v) for k, v in d.get("imports", {}).items()},
            functions={
                str(q): FunctionInfo.from_dict(f)
                for q, f in d.get("functions", {}).items()
            },
            classes={
                str(n): ClassInfo.from_dict(c) for n, c in d.get("classes", {}).items()
            },
            suppressions={
                int(k): [str(c) for c in v]
                for k, v in d.get("suppressions", {}).items()
            },
        )

    def suppressed_at(self, line: int, code: str) -> bool:
        """True when an inline comment disables ``code`` on ``line``.

        >>> s = ModuleSummary(label="a.py", module="a",
        ...                   suppressions={4: ["RPL003"]})
        >>> s.suppressed_at(4, "RPL003"), s.suppressed_at(5, "RPL003")
        (True, False)
        """
        codes = self.suppressions.get(line)
        if not codes:
            return False
        return "ALL" in codes or code.upper() in codes


def summarize(ctx: FileContext) -> ModuleSummary:
    """Distill a parsed file into its :class:`ModuleSummary`.

    Call sites keep the alias-resolved dotted names of
    :meth:`FileContext.qualified_name`; direct nondeterminism sources
    come from the shared RPL001/RPL002 detectors (honoring the
    ``created_unix=`` exemption and inline suppressions, so a vetted
    suppression never taints its callers).

    >>> ctx = FileContext("src/repro/demo.py",
    ...     "import random\\ndef draw():\\n    return random.random()\\n")
    >>> s = summarize(ctx)
    >>> s.functions["draw"].taint_sources[0].line
    3
    """
    from .rules.determinism import iter_rng_draws, iter_wall_clock_reads

    module, is_package = _module_name(ctx.path)
    summary = ModuleSummary(
        label=ctx.path,
        module=module,
        is_package=is_package,
        imports=dict(ctx.imports),
        suppressions={line: sorted(codes) for line, codes in ctx.suppressions.items()},
    )

    sources: Dict[int, List[Tuple[ast.Call, str, str]]] = {}
    for node, message in iter_rng_draws(ctx):
        if not _suppressed(ctx, node, ("RPL001", "RPL003")):
            sources.setdefault(id(node), []).append((node, message, "RPL001"))
    if not ctx.in_observability:
        # the observability layer's wall-clock capture is sanctioned
        # (RPL002 exempts it), so it must not taint its callers either
        for node, message in iter_wall_clock_reads(ctx):
            if not _suppressed(ctx, node, ("RPL002", "RPL003")):
                sources.setdefault(id(node), []).append((node, message, "RPL002"))

    def owner_of(node: ast.AST) -> Optional[str]:
        """Qualname of the top-level function/method lexically owning ``node``."""
        chain = [node] + list(ctx.ancestors(node))
        chain.reverse()  # module first
        qual: Optional[str] = None
        cls: Optional[str] = None
        for item in chain[1:]:  # skip the module
            if isinstance(item, ast.ClassDef):
                if qual is None:
                    cls = item.name
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if qual is None:
                    qual = f"{cls}.{item.name}" if cls else item.name
        return qual

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parent = ctx.parent(node)
            if isinstance(parent, ast.Module):
                summary.functions[node.name] = FunctionInfo(
                    qualname=node.name, line=node.lineno, col=node.col_offset
                )
            elif isinstance(parent, ast.ClassDef) and isinstance(
                ctx.parent(parent), ast.Module
            ):
                qual = f"{parent.name}.{node.name}"
                summary.functions[qual] = FunctionInfo(
                    qualname=qual, line=node.lineno, col=node.col_offset
                )
        elif isinstance(node, ast.ClassDef) and isinstance(
            ctx.parent(node), ast.Module
        ):
            bases = []
            for b in node.bases:
                dotted = ctx.qualified_name(b)
                if dotted:
                    bases.append(dotted)
            methods = [
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            summary.classes[node.name] = ClassInfo(
                name=node.name, bases=bases, methods=methods
            )

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = owner_of(node)
        if qual is None or qual not in summary.functions:
            continue
        info = summary.functions[qual]
        for _, message, _code in sources.get(id(node), []):
            info.taint_sources.append(TaintSource(message=message, line=node.lineno))
        name = ctx.qualified_name(node.func)
        if name:
            info.calls.append(
                CallSite(name=name, line=node.lineno, col=node.col_offset)
            )

    for info in summary.functions.values():
        info.calls.sort(key=lambda c: (c.line, c.col, c.name))
        info.taint_sources.sort(key=lambda t: (t.line, t.message))
    return summary


def _suppressed(ctx: FileContext, node: ast.AST, codes: Tuple[str, ...]) -> bool:
    line_codes = ctx.suppressions.get(getattr(node, "lineno", 0))
    if not line_codes:
        return False
    return "ALL" in line_codes or any(c in line_codes for c in codes)


@dataclass(frozen=True)
class TaintInfo:
    """Why a function is transitively nondeterministic.

    ``chain`` runs from the tainted function down to the function
    holding the direct source; ``source_*`` locate and describe that
    source for the diagnostic.

    >>> TaintInfo(chain=("a.f", "b.g"), source_message="m",
    ...           source_label="b.py", source_line=2).chain
    ('a.f', 'b.g')
    """

    chain: Tuple[str, ...]
    source_message: str
    source_label: str
    source_line: int


class ProjectContext:
    """The cross-module symbol table and call graph.

    Built from :class:`ModuleSummary` objects (fresh, cached, or shipped
    back from pool workers).  Resolution is conservative: a dotted name
    that cannot be pinned to a project-local function resolves to
    ``None`` and never participates in taint propagation.

    >>> project = ProjectContext.from_sources({
    ...     "src/repro/a.py": "from repro.b import helper\\n"
    ...                       "def sim():\\n    return helper()\\n",
    ...     "src/repro/b.py": "import random\\n"
    ...                       "def helper():\\n    return random.random()\\n",
    ... })
    >>> sorted(project.taint())
    ['repro.a.sim', 'repro.b.helper']
    """

    def __init__(
        self,
        summaries: Dict[str, ModuleSummary],
        targets: Optional[Set[str]] = None,
    ) -> None:
        self.summaries = dict(summaries)
        self.targets = set(targets) if targets is not None else set(summaries)
        #: dotted module name -> summary (sorted labels, last wins on clash)
        self.modules: Dict[str, ModuleSummary] = {}
        for label in sorted(self.summaries):
            s = self.summaries[label]
            self.modules[s.module] = s
        self._taint: Optional[Dict[str, TaintInfo]] = None
        self._edges: Optional[Dict[str, List[Tuple[str, CallSite]]]] = None

    @classmethod
    def from_sources(
        cls,
        sources: Dict[str, str],
        targets: Optional[Set[str]] = None,
    ) -> "ProjectContext":
        """Build a project straight from ``{label: source}`` (tests, docs).

        >>> p = ProjectContext.from_sources({"a.py": "def f():\\n    pass\\n"})
        >>> list(p.modules)
        ['a']
        """
        summaries = {
            label: summarize(FileContext(label, text))
            for label, text in sources.items()
        }
        return cls(summaries, targets=targets)

    # -- name resolution ---------------------------------------------------

    @staticmethod
    def _absolutize(dotted: str, module: str, is_package: bool) -> str:
        """Resolve a leading-dots relative name against its home module.

        >>> ProjectContext._absolutize("..units.kw", "repro.contracts.billing",
        ...                            False)
        'repro.units.kw'
        >>> ProjectContext._absolutize(".b.helper", "pkg", True)
        'pkg.b.helper'
        """
        if not dotted.startswith("."):
            return dotted
        n = len(dotted) - len(dotted.lstrip("."))
        rest = dotted[n:]
        base = module.split(".") if is_package else module.split(".")[:-1]
        up = n - 1
        if up:
            base = base[:-up] if up <= len(base) else []
        return ".".join([p for p in base if p] + ([rest] if rest else []))

    def resolve(self, summary: ModuleSummary, dotted: str) -> Optional[str]:
        """Resolve a dotted call name to a project function id, if any.

        A function id is ``module.qualname`` — e.g.
        ``repro.robustness.shards.ShardWorker.run``.

        >>> p = ProjectContext.from_sources({
        ...     "pkg/__init__.py": "from .b import helper as h2\\n",
        ...     "pkg/b.py": "def helper():\\n    pass\\n",
        ...     "main.py": "from pkg import h2\\ndef f():\\n    return h2()\\n",
        ... })
        >>> p.resolve(p.summaries["main.py"], "pkg.h2")
        'pkg.b.helper'
        """
        return self._resolve_dotted(summary, dotted, 0)

    def _resolve_dotted(
        self, summary: ModuleSummary, dotted: str, depth: int
    ) -> Optional[str]:
        if depth > _MAX_RESOLVE_DEPTH or not dotted:
            return None
        dotted = self._absolutize(dotted, summary.module, summary.is_package)
        parts = [p for p in dotted.split(".") if p]
        if not parts:
            return None
        for i in range(len(parts), 0, -1):
            mod = ".".join(parts[:i])
            if mod in self.modules and parts[i:]:
                found = self._resolve_attrs(self.modules[mod], parts[i:], depth)
                if found:
                    return found
        # bare/local name: look it up in the calling module itself
        return self._resolve_attrs(summary, parts, depth)

    def _resolve_attrs(
        self, summary: ModuleSummary, attrs: List[str], depth: int
    ) -> Optional[str]:
        if not attrs or depth > _MAX_RESOLVE_DEPTH:
            return None
        head = attrs[0]
        if head in summary.functions and len(attrs) == 1:
            return f"{summary.module}.{head}"
        if head in summary.classes:
            if len(attrs) == 1:
                # bare constructor call -> the class's own __init__, if any
                return self._resolve_method(summary, head, "__init__", depth)
            if len(attrs) == 2:
                return self._resolve_method(summary, head, attrs[1], depth)
            return None
        if head in summary.imports:
            target = summary.imports[head]
            if target == head and len(attrs) > 1:
                # plain `import pkg.mod` binds the root name to itself;
                # the dotted chain already carries the real path
                target_dotted = ".".join(attrs)
            else:
                target_dotted = ".".join([target] + attrs[1:])
            resolved = self._absolutize(
                target_dotted, summary.module, summary.is_package
            )
            return self._resolve_global(resolved, depth + 1)
        return None

    def _resolve_global(self, dotted: str, depth: int) -> Optional[str]:
        """Resolve an absolute dotted chain with no home-module fallback."""
        if depth > _MAX_RESOLVE_DEPTH or not dotted:
            return None
        parts = [p for p in dotted.split(".") if p]
        for i in range(len(parts), 0, -1):
            mod = ".".join(parts[:i])
            if mod in self.modules and parts[i:]:
                found = self._resolve_attrs(self.modules[mod], parts[i:], depth)
                if found:
                    return found
        return None

    def _resolve_method(
        self,
        summary: ModuleSummary,
        cls_name: str,
        method: str,
        depth: int,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[str]:
        """Find ``method`` on ``cls_name`` or its resolvable base classes."""
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        seen = _seen or set()
        key = (summary.module, cls_name)
        if key in seen:
            return None
        seen.add(key)
        cls = summary.classes.get(cls_name)
        if cls is None:
            return None
        if method in cls.methods:
            return f"{summary.module}.{cls_name}.{method}"
        for base in cls.bases:
            located = self._locate_class(summary, base, depth + 1)
            if located is None:
                continue
            base_summary, base_name = located
            found = self._resolve_method(
                base_summary, base_name, method, depth + 1, seen
            )
            if found:
                return found
        return None

    def _locate_class(
        self, summary: ModuleSummary, dotted: str, depth: int
    ) -> Optional[Tuple[ModuleSummary, str]]:
        """Resolve a dotted class reference to ``(module_summary, class)``."""
        if depth > _MAX_RESOLVE_DEPTH:
            return None
        dotted = self._absolutize(dotted, summary.module, summary.is_package)
        parts = [p for p in dotted.split(".") if p]
        if not parts:
            return None
        # local class name
        if len(parts) == 1 and parts[0] in summary.classes:
            return summary, parts[0]
        # imported alias
        if parts[0] in summary.imports:
            target = summary.imports[parts[0]]
            if target != parts[0]:
                return self._locate_class(
                    summary, ".".join([target] + parts[1:]), depth + 1
                )
        for i in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:i])
            if mod in self.modules:
                rest = parts[i:]
                target_summary = self.modules[mod]
                if len(rest) == 1:
                    if rest[0] in target_summary.classes:
                        return target_summary, rest[0]
                    if rest[0] in target_summary.imports:
                        return self._locate_class(
                            target_summary,
                            target_summary.imports[rest[0]],
                            depth + 1,
                        )
        return None

    # -- call graph and taint ---------------------------------------------

    def _function_ids(self) -> List[Tuple[str, ModuleSummary, FunctionInfo]]:
        out = []
        for label in sorted(self.summaries):
            s = self.summaries[label]
            for qual in sorted(s.functions):
                out.append((f"{s.module}.{qual}", s, s.functions[qual]))
        return out

    def resolve_call(
        self, summary: ModuleSummary, caller_qualname: str, call: CallSite
    ) -> Optional[str]:
        """Resolve one call site of ``caller_qualname`` to a function id.

        ``self.``/``cls.`` receivers resolve through the caller's own
        class (and its bases); everything else goes through the module
        symbol table.

        >>> p = ProjectContext.from_sources({"m.py":
        ...     "class C:\\n"
        ...     "    def a(self):\\n        return self.b()\\n"
        ...     "    def b(self):\\n        pass\\n"})
        >>> s = p.summaries["m.py"]
        >>> p.resolve_call(s, "C.a", s.functions["C.a"].calls[0])
        'm.C.b'
        """
        name = call.name
        if name.startswith(("self.", "cls.")) and "." in caller_qualname:
            cls_name = caller_qualname.split(".", 1)[0]
            attrs = name.split(".")[1:]
            if len(attrs) == 1:
                return self._resolve_method(summary, cls_name, attrs[0], 0)
            return None
        return self._resolve_dotted(summary, name, 0)

    def edges(self) -> Dict[str, List[Tuple[str, CallSite]]]:
        """The resolved call graph: function id -> [(callee id, site)].

        >>> p = ProjectContext.from_sources({"m.py":
        ...     "def a():\\n    return b()\\n"
        ...     "def b():\\n    pass\\n"})
        >>> [(callee, site.line) for callee, site in p.edges()["m.a"]]
        [('m.b', 2)]
        """
        if self._edges is None:
            edges: Dict[str, List[Tuple[str, CallSite]]] = {}
            for fid, summary, info in self._function_ids():
                resolved = []
                for call in info.calls:
                    callee = self.resolve_call(summary, info.qualname, call)
                    if callee is not None:
                        resolved.append((callee, call))
                edges[fid] = resolved
            self._edges = edges
        return self._edges

    def taint(self) -> Dict[str, TaintInfo]:
        """The determinism-taint fixpoint over the call graph.

        A function is tainted when its body holds a direct unseeded-RNG
        draw or wall-clock read, or when it calls (transitively) a
        tainted function.  The worklist iterates to fixpoint, so call
        cycles converge; each entry keeps a witness chain for messages.

        >>> p = ProjectContext.from_sources({"m.py":
        ...     "import time\\n"
        ...     "def a():\\n    return b()\\n"
        ...     "def b():\\n    return a() or time.time()\\n"})
        >>> p.taint()["m.a"].chain
        ('m.a', 'm.b')
        """
        if self._taint is not None:
            return self._taint
        infos: Dict[str, TaintInfo] = {}
        functions = self._function_ids()
        for fid, summary, info in functions:
            if info.taint_sources:
                src = info.taint_sources[0]
                infos[fid] = TaintInfo(
                    chain=(fid,),
                    source_message=src.message,
                    source_label=summary.label,
                    source_line=src.line,
                )
        edges = self.edges()
        changed = True
        while changed:
            changed = False
            for fid, _summary, _info in functions:
                if fid in infos:
                    continue
                for callee, _site in sorted(
                    edges.get(fid, ()), key=lambda e: (e[0], e[1].line)
                ):
                    if callee in infos and callee != fid:
                        base = infos[callee]
                        infos[fid] = TaintInfo(
                            chain=(fid,) + base.chain,
                            source_message=base.source_message,
                            source_label=base.source_label,
                            source_line=base.source_line,
                        )
                        changed = True
                        break
        self._taint = infos
        return infos

    def iter_target_functions(
        self,
    ) -> Iterator[Tuple[str, ModuleSummary, FunctionInfo]]:
        """Functions of target files only, in deterministic order.

        >>> p = ProjectContext.from_sources(
        ...     {"a.py": "def f():\\n    pass\\n", "b.py": "def g():\\n    pass\\n"},
        ...     targets={"a.py"})
        >>> [fid for fid, _, _ in p.iter_target_functions()]
        ['a.f']
        """
        for fid, summary, info in self._function_ids():
            if summary.label in self.targets:
                yield fid, summary, info


# -- engine driver ---------------------------------------------------------


@dataclass
class AnalysisResult:
    """What one full engine run produced.

    ``findings`` carries per-file and project findings for target files
    only, sorted; ``skipped`` the explicit skip records; ``stats`` the
    cache/pool accounting the CLI and the benchmark report.

    >>> AnalysisResult(findings=[], skipped=[], stats={"n_files": 0}).stats
    {'n_files': 0}
    """

    findings: List[Finding]
    skipped: List[SkippedFile]
    stats: Dict[str, int]


def _analyze_one(item: Tuple[str, str]) -> Tuple[str, Dict[str, object]]:
    """Worker: per-file findings + module summary for one source blob.

    Top-level so a process pool can pickle it; also the serial path, so
    ``--jobs 1`` and ``--jobs N`` run byte-identical code.

    >>> label, payload = _analyze_one(("x.py", "def f(a=[]):\\n    return a\\n"))
    >>> [f["code"] for f in payload["findings"]]
    ['RPL020']
    """
    label, source = item
    try:
        ctx = FileContext(label, source)
    except SyntaxError as exc:
        return label, {
            "findings": [syntax_error_finding(label, exc).to_dict()],
            "summary": ModuleSummary(
                label=label, module=_module_name(label)[0]
            ).to_dict(),
        }
    findings: List[Finding] = []
    for rule in file_rules():
        for f in rule.check(ctx):
            if not ctx.suppressed(f):
                findings.append(f)
    return label, {
        "findings": [f.to_dict() for f in sorted(findings)],
        "summary": summarize(ctx).to_dict(),
    }


def _finding_from_dict(d: Dict[str, object]) -> Finding:
    return Finding(
        path=str(d["path"]),
        line=int(d["line"]),
        col=int(d["col"]),
        code=str(d["code"]),
        name=str(d["name"]),
        family=str(d["family"]),
        message=str(d["message"]),
    )


def _project_findings(project: ProjectContext) -> List[Finding]:
    findings: List[Finding] = []
    for rule in project_rules():
        for f in rule.check_project(project):
            summary = project.summaries.get(f.path)
            if summary is not None and summary.suppressed_at(f.line, f.code):
                continue
            findings.append(f)
    return sorted(findings)


def analyze_paths(
    paths: Sequence[str],
    root: Optional[Path] = None,
    jobs: int = 1,
    cache=None,
    context_roots: Sequence[str] = CONTEXT_ROOTS,
) -> AnalysisResult:
    """Run the full engine: per-file rules, project rules, cache, pool.

    ``cache`` is a :class:`tools.reprolint.cache.LintCache` (or None to
    analyze everything fresh).  ``jobs > 1`` fans cache-miss files out
    to a process pool; results are assembled in sorted label order, so
    parallel output is byte-identical to serial.  The symbol table
    additionally covers ``context_roots`` under ``root`` so cross-file
    resolution sees the whole project even for partial targets.

    >>> import pathlib, tempfile
    >>> d = pathlib.Path(tempfile.mkdtemp())
    >>> _ = (d / "a.py").write_text("def f(x=[]):\\n    return x\\n")
    >>> result = analyze_paths([str(d)], root=d)
    >>> [f.code for f in result.findings], result.stats["n_target_files"]
    (['RPL020'], 1)
    """
    root = (root or Path.cwd()).resolve()
    target_files, skipped = discover_files(paths, root)
    target_labels = {label for label, _ in target_files}

    all_files: List[Tuple[str, Path]] = list(target_files)
    known = set(target_labels)
    for extra_root in context_roots:
        p = root / extra_root
        if not p.is_dir():
            continue
        extra_files, _extra_skipped = discover_files([str(p)], root)
        for label, path in extra_files:
            if label not in known:
                known.add(label)
                all_files.append((label, path))
    all_files.sort()

    sources: Dict[str, str] = {}
    hashes: Dict[str, str] = {}
    for label, path in all_files:
        try:
            raw = path.read_bytes()
        except OSError:
            if label in target_labels:
                skipped.append(SkippedFile(label, "unreadable"))
                target_labels.discard(label)
            continue
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError:
            if label in target_labels:
                skipped.append(SkippedFile(label, "not valid UTF-8"))
                target_labels.discard(label)
            continue
        sources[label] = text
        hashes[label] = hashlib.sha256(raw).hexdigest()
    skipped = sorted(skipped)

    per_file: Dict[str, List[Finding]] = {}
    summaries: Dict[str, ModuleSummary] = {}
    misses: List[Tuple[str, str]] = []
    hits = 0
    for label in sorted(sources):
        entry = cache.get(label, hashes[label]) if cache is not None else None
        if entry is not None:
            findings_dicts, summary_dict = entry
            per_file[label] = [_finding_from_dict(d) for d in findings_dicts]
            summaries[label] = ModuleSummary.from_dict(summary_dict)
            hits += 1
        else:
            misses.append((label, sources[label]))

    if misses:
        if jobs > 1 and len(misses) > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(_analyze_one, misses, chunksize=8))
        else:
            results = [_analyze_one(item) for item in misses]
        for label, payload in results:
            per_file[label] = [_finding_from_dict(d) for d in payload["findings"]]
            summaries[label] = ModuleSummary.from_dict(payload["summary"])
            if cache is not None:
                cache.put(label, hashes[label], payload["findings"], payload["summary"])

    project_hash = hashlib.sha256(
        "\n".join(f"{label}:{hashes[label]}" for label in sorted(hashes)).encode()
    ).hexdigest()
    project_cached = cache.get_project(project_hash) if cache is not None else None
    if project_cached is not None:
        project_found = [_finding_from_dict(d) for d in project_cached]
        project_hit = 1
    else:
        project = ProjectContext(summaries, targets=target_labels)
        project_found = _project_findings(project)
        project_hit = 0
        if cache is not None:
            cache.put_project(project_hash, [f.to_dict() for f in project_found])

    if cache is not None:
        cache.save()

    findings = sorted(
        [f for label in target_labels for f in per_file.get(label, [])]
        + [f for f in project_found if f.path in target_labels]
    )
    stats = {
        "n_files": len(sources),
        "n_target_files": len(target_labels),
        "cache_hits": hits,
        "cache_misses": len(misses),
        "project_cache_hit": project_hit,
        "jobs": jobs,
    }
    return AnalysisResult(findings=findings, skipped=skipped, stats=stats)
