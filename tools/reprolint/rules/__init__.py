"""Rule families of the reprolint analyzer.

Importing this package registers every rule with the engine's registry
(see :func:`tools.reprolint.engine.all_rules`).  Families and codes:

========  ====================  ==============================================
family    codes                 enforced invariant
========  ====================  ==============================================
determinism    RPL001–RPL003   seeded-only randomness; no wall clock in sims;
                               no sim-path calls into transitively tainted
                               helpers (cross-module taint fixpoint)
units          RPL010–RPL012   suffix unit discipline (kW/kWh/s/USD) and
                               dimension dataflow through variables and calls
cache-safety   RPL020–RPL022   hashable memo keys, no shared mutables
observability  RPL030–RPL031   one-boolean-read gating; spans in ``with``
exceptions     RPL040–RPL043   no bare/swallowing excepts; domain raises;
                               bounded, backing-off retry loops
serialization  RPL044          sort_keys=True in journal/manifest writers
                               (merge determinism needs stable bytes)
perf           RPL045–RPL046   no Python loops over the site axis in the
                               columnar billing kernels; no blocking calls
                               inside async defs in the service layer
concurrency    RPL047–RPL049,  no mutating closures shipped to pool workers;
               RPL051          locked StreamWriter writes; journal writes
                               flushed + fsynced; asyncio streams that feed
                               readline() constructed with an explicit
                               ``limit=`` frame bound
float-compare  RPL050          tolerance helpers, not ``==``, for floats
========  ====================  ==============================================
"""

from __future__ import annotations

from . import (
    async_blocking,
    cache_safety,
    concurrency,
    determinism,
    exceptions,
    floatcmp,
    interprocedural,
    observability,
    perf,
    readline_bound,
    serialization,
    unit_flow,
    units,
)

__all__ = [
    "async_blocking",
    "cache_safety",
    "concurrency",
    "determinism",
    "exceptions",
    "floatcmp",
    "interprocedural",
    "observability",
    "perf",
    "readline_bound",
    "serialization",
    "unit_flow",
    "units",
]
