"""Event-loop protection for the service layer (RPL046).

The pricing service runs on a single asyncio event loop: one blocked
coroutine stalls *every* connection, the micro-batcher's flush clock and
the admission deadlines all at once.  The service package therefore has
a hard rule: anything that can block — sleeping, synchronous file I/O,
spawning processes — either happens on the pricing executor thread
(``run_in_executor``) or not at all.

* **RPL046 (blocking-call-in-async)** — a call to ``time.sleep``, a
  synchronous file-I/O entry point (builtin ``open``, ``Path.read_text``
  / ``write_text`` / ``read_bytes`` / ``write_bytes``), anything in
  ``subprocess`` / ``os.system`` / ``os.popen``, or blocking socket
  helpers (``socket.create_connection``) lexically inside an
  ``async def`` in ``src/repro/service/``.  The asyncio-native
  counterparts (``asyncio.sleep``, ``run_in_executor``,
  ``asyncio.open_connection``) are the sanctioned idiom and never match.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import FileContext, Finding, Rule, register

#: Fully-qualified callables that block the thread they run on.
_BLOCKING_QUALNAMES = {
    "time.sleep": "time.sleep blocks the event loop; await asyncio.sleep "
    "or move the wait to the pricing executor",
    "os.system": "os.system blocks on a child process; the service layer "
    "must not shell out from a coroutine",
    "os.popen": "os.popen blocks on a child process pipe",
    "socket.create_connection": "socket.create_connection blocks on "
    "connect; use asyncio.open_connection",
}

#: Any call whose qualified name starts with one of these prefixes.
_BLOCKING_PREFIXES = ("subprocess.",)

#: Method names that perform synchronous file I/O regardless of receiver
#: (Path.read_text() and friends cannot be alias-resolved statically).
_BLOCKING_METHODS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
}


def _in_service(path: str) -> bool:
    return "repro/service/" in path


def _blocking_reason(ctx: FileContext, call: ast.Call) -> Optional[str]:
    qualname = ctx.qualified_name(call.func)
    if qualname is not None:
        if qualname in _BLOCKING_QUALNAMES:
            return _BLOCKING_QUALNAMES[qualname]
        for prefix in _BLOCKING_PREFIXES:
            if qualname.startswith(prefix):
                return (
                    f"{qualname} spawns and waits on a child process; "
                    "the service event loop must never block on one"
                )
        if qualname == "open":
            return (
                "builtin open() is synchronous file I/O; do it on the "
                "pricing executor (run_in_executor), not in a coroutine"
            )
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        return (
            "builtin open() is synchronous file I/O; do it on the "
            "pricing executor (run_in_executor), not in a coroutine"
        )
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _BLOCKING_METHODS
    ):
        return (
            f".{call.func.attr}() is synchronous file I/O; do it on the "
            "pricing executor, not in a coroutine"
        )
    return None


@register
class BlockingCallInAsyncRule(Rule):
    """RPL046: no blocking calls inside ``async def`` in the service layer."""

    code = "RPL046"
    name = "blocking-call-in-async"
    family = "perf"
    description = (
        "a blocking call (time.sleep, sync file I/O, subprocess) inside an "
        "async def in src/repro/service/ stalls every connection sharing "
        "the event loop; await the asyncio counterpart or run it on the "
        "pricing executor thread."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_service(ctx.path):
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                # A call inside a nested *sync* def is that function's
                # business (it may legitimately run on the executor).
                owner = ctx.enclosing_function(node)
                if owner is not func:
                    continue
                reason = _blocking_reason(ctx, node)
                if reason is None:
                    continue
                yield self.finding(
                    ctx, node,
                    f"async function {func.name!r}: {reason}",
                )
