"""Cache-safety rules (RPL020–RPL022).

The settlement fast path (PR 2) memoizes aggressively: settlement plans
are weak-cached per load, tariff rate vectors per geometry, calendars
per ``(interval_s, start_s)``.  Memoization is only sound when keys are
hashable and cached values are never mutated by callers — these rules
enforce the static half of that contract.

* **RPL020 (mutable-default)** — mutable default argument values
  (``[]``, ``{}``, ``set()``, ``list()``, ``dict()``).  One shared
  instance per *function object* is exactly the aliasing bug class that
  poisons memo tables.
* **RPL021 (unhashable-memo-param)** — a ``functools.lru_cache`` /
  ``functools.cache`` decorated function whose parameter annotation is a
  known-unhashable type (``list``/``dict``/``set``/``np.ndarray``):
  every call raises ``TypeError`` at runtime, or worse, forces callers
  to tuple-ify ad hoc.
* **RPL022 (shared-mutable-return)** — ``return`` of a module-level
  list/dict/set by name without a defensive copy; callers mutate shared
  state that other callers (and memo tables) observe.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..engine import FileContext, Finding, Rule, register

_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}
_UNHASHABLE_ANNOTATIONS = {"list", "dict", "set", "List", "Dict", "Set", "ndarray"}
_MEMO_DECORATORS = {"lru_cache", "cache", "functools.lru_cache", "functools.cache"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES and not node.args and not node.keywords
    return False


@register
class MutableDefaultRule(Rule):
    """RPL020: no mutable default argument values."""

    code = "RPL020"
    name = "mutable-default"
    family = "cache-safety"
    description = (
        "A mutable default ([] / {} / set()) is evaluated once and shared "
        "across every call; use None and construct inside the body."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in {label!r} is shared "
                        "across calls; default to None and build inside",
                    )


@register
class UnhashableMemoParamRule(Rule):
    """RPL021: memoized functions must take hashable parameters."""

    code = "RPL021"
    name = "unhashable-memo-param"
    family = "cache-safety"
    description = (
        "functools.lru_cache/cache keys every call by its arguments; a "
        "list/dict/set/ndarray parameter raises TypeError on first call — "
        "take a tuple/frozenset or key by identity instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_memoized(ctx, node):
                continue
            args = list(node.args.posonlyargs) + list(node.args.args) + list(
                node.args.kwonlyargs
            )
            for arg in args:
                if arg.arg in ("self", "cls"):
                    continue
                if self._is_unhashable(arg.annotation):
                    yield self.finding(
                        ctx, arg,
                        f"memoized function {node.name!r} takes unhashable "
                        f"parameter {arg.arg!r}; lru_cache keys must be "
                        "hashable (use tuple/frozenset)",
                    )

    @staticmethod
    def _is_memoized(ctx: FileContext, node: ast.AST) -> bool:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            qual = ctx.qualified_name(target)
            if qual in _MEMO_DECORATORS:
                return True
        return False

    @staticmethod
    def _is_unhashable(annotation) -> bool:
        if annotation is None:
            return False
        node = annotation
        if isinstance(node, ast.Subscript):  # List[int], Dict[str, float], ...
            node = node.value
        if isinstance(node, ast.Attribute):  # np.ndarray, typing.List
            return node.attr in _UNHASHABLE_ANNOTATIONS
        return isinstance(node, ast.Name) and node.id in _UNHASHABLE_ANNOTATIONS


@register
class SharedMutableReturnRule(Rule):
    """RPL022: never return module-level mutables by reference."""

    code = "RPL022"
    name = "shared-mutable-return"
    family = "cache-safety"
    description = (
        "Returning a module-level list/dict/set by name hands every caller "
        "the same object; mutate-after-return corrupts global state and any "
        "cache built on it — return a copy or an immutable view."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_mutables = self._module_mutables(ctx)
        if not module_mutables:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in module_mutables:
                if ctx.enclosing_function(node) is None:
                    continue
                yield self.finding(
                    ctx, node,
                    f"returns module-level {module_mutables[value.id]} "
                    f"{value.id!r} by reference; return a copy "
                    f"(list(...)/dict(...)) or an immutable view",
                )

    @staticmethod
    def _module_mutables(ctx: FileContext) -> Dict[str, str]:
        """Names assigned a mutable literal at module scope, -> kind."""
        out: Dict[str, str] = {}
        reassigned: Set[str] = set()
        for stmt in ctx.tree.body:
            targets = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id in out:
                    reassigned.add(target.id)
                if isinstance(value, (ast.List, ast.ListComp)):
                    out[target.id] = "list"
                elif isinstance(value, (ast.Dict, ast.DictComp)):
                    out[target.id] = "dict"
                elif isinstance(value, (ast.Set, ast.SetComp)):
                    out[target.id] = "set"
                elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
                        and value.func.id in _MUTABLE_FACTORIES:
                    out[target.id] = value.func.id
        for name in reassigned:
            out.pop(name, None)
        return out
