"""Concurrency-discipline rules (RPL047–RPL049).

PR 6–8 added the layers these rules guard: the sharded sweep fabric
(``run_sharded`` + process pools), the asyncio pricing service, and the
fsync-disciplined journals that make resume bit-identical.  Each has a
failure mode that type checkers and per-expression linters cannot see:

* **RPL047 (closure-to-worker)** — a lambda or nested function shipped
  to ``run_sharded`` / ``pool.submit`` / ``pool.map`` that *mutates* a
  captured outer variable.  Under a process pool the mutation happens in
  the child and is silently lost; under threads it is a data race.
  Workers must be module-level functions returning their results.
* **RPL048 (stream-writer-discipline)** — in the service layer:
  a ``StreamWriter`` ``.write()`` outside an ``async with <lock>``
  block (concurrent coroutines interleave partial frames on the wire),
  or awaiting a scheduling call (``asyncio.sleep`` / ``gather`` /
  ``wait`` / ``wait_for``) while holding a lock (serializes every
  connection behind one sleeper).  ``await writer.drain()`` under the
  lock is the sanctioned idiom and never matches.
* **RPL049 (journal-write-no-fsync)** — in ``robustness/`` writer
  modules, a file-handle ``.write()`` in a function that never calls
  ``.flush()`` on the same handle plus ``os.fsync``.  The crash-safety
  contract of the journals is that an acknowledged record is durable;
  a buffered write that is not fsynced breaks exactly the replay
  guarantee the chaos tests exercise.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..engine import FileContext, Finding, Rule, register

#: Receiver attr calls that mutate the receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "appendleft",
}

#: Awaited calls that yield to the scheduler for an unbounded time.
_SCHEDULING_AWAITS = {"sleep", "gather", "wait", "wait_for"}


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _is_pool_dispatch(ctx: FileContext, call: ast.Call) -> Optional[str]:
    """The dispatch kind when ``call`` ships work to workers, else None."""
    qual = ctx.qualified_name(call.func)
    if qual is not None and (qual == "run_sharded" or qual.endswith(".run_sharded")):
        return "run_sharded"
    if isinstance(call.func, ast.Attribute):
        receiver = _dotted(call.func.value) or ""
        low = receiver.lower()
        pool_like = any(tok in low for tok in ("pool", "executor"))
        if call.func.attr == "submit" and pool_like:
            return f"{receiver}.submit"
        if call.func.attr == "map" and pool_like:
            return f"{receiver}.map"
    return None


def _bound_names(func: ast.AST) -> Set[str]:
    """Names bound inside a lambda/def: params, assignments, targets."""
    bound: Set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        a = func.args
        for arg in list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs):
            bound.add(arg.arg)
        if a.vararg:
            bound.add(a.vararg.arg)
        if a.kwarg:
            bound.add(a.kwarg.arg)
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
            elif isinstance(node, ast.comprehension):
                for t in ast.walk(node.target):
                    if isinstance(t, ast.Name):
                        bound.add(t.id)
    return bound


def _captured_mutations(func: ast.AST) -> List[str]:
    """Free variables the callable mutates (the shared-state hazard)."""
    bound = _bound_names(func)
    hit: List[str] = []
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Nonlocal):
                hit.extend(n for n in node.names if n not in hit)
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name) and target.id not in bound:
                    if target.id not in hit:
                        hit.append(target.id)
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ) and target.value.id not in bound:
                    if target.value.id not in hit:
                        hit.append(target.value.id)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Subscript) and isinstance(
                        t.value, ast.Name
                    ) and t.value.id not in bound:
                        if t.value.id not in hit:
                            hit.append(t.value.id)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                receiver = node.func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id not in bound
                    and node.func.attr in _MUTATOR_METHODS
                ):
                    if receiver.id not in hit:
                        hit.append(receiver.id)
    return hit


@register
class ClosureToWorkerRule(Rule):
    """RPL047: no mutating closures shipped to sharded/pool workers."""

    code = "RPL047"
    name = "closure-to-worker"
    family = "concurrency"
    description = (
        "A lambda or nested function passed to run_sharded/pool.submit/"
        "pool.map that mutates a captured variable loses the mutation in a "
        "process pool (the child mutates its copy) and races under threads; "
        "use a module-level worker that returns its results."
    )
    example_bad = (
        "def sweep(items):\n"
        "    results = []\n"
        "    pool.map(lambda x: results.append(x * 2), items)  # lost!"
    )
    example_good = (
        "def _double(x):\n"
        "    return x * 2\n"
        "def sweep(items):\n"
        "    results = list(pool.map(_double, items))"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for call in ast.walk(ctx.tree):
            if not isinstance(call, ast.Call):
                continue
            dispatch = _is_pool_dispatch(ctx, call)
            if dispatch is None:
                continue
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                shipped = self._shipped_callable(ctx, call, arg)
                if shipped is None:
                    continue
                mutated = _captured_mutations(shipped)
                if not mutated:
                    continue
                what = (
                    "lambda" if isinstance(shipped, ast.Lambda)
                    else f"nested function {shipped.name!r}"
                )
                yield self.finding(
                    ctx, arg if hasattr(arg, "lineno") else call,
                    f"{what} shipped to {dispatch} mutates captured "
                    f"state ({', '.join(sorted(mutated))}); worker processes "
                    "mutate a copy — return results instead",
                )

    @staticmethod
    def _shipped_callable(
        ctx: FileContext, call: ast.Call, arg: ast.AST
    ) -> Optional[ast.AST]:
        if isinstance(arg, ast.Lambda):
            return arg
        if isinstance(arg, ast.Name):
            # a nested def in the dispatching function's own scope
            owner = ctx.enclosing_function(call)
            if owner is None:
                return None
            for node in ast.walk(owner):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == arg.id
                    and node is not owner
                ):
                    return node
        return None


def _lock_context_name(item: ast.withitem) -> Optional[str]:
    dotted = _dotted(item.context_expr)
    if dotted is None and isinstance(item.context_expr, ast.Call):
        dotted = _dotted(item.context_expr.func)
    if dotted is not None and "lock" in dotted.lower():
        return dotted
    return None


def _enclosing_lock(ctx: FileContext, node: ast.AST) -> Optional[str]:
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.AsyncWith, ast.With)):
            for item in anc.items:
                name = _lock_context_name(item)
                if name is not None:
                    return name
    return None


@register
class StreamWriterDisciplineRule(Rule):
    """RPL048: locked StreamWriter writes; no scheduling awaits under locks."""

    code = "RPL048"
    name = "stream-writer-discipline"
    family = "concurrency"
    description = (
        "In src/repro/service/, StreamWriter .write() must happen inside "
        "'async with <lock>' (concurrent coroutines interleave partial "
        "frames otherwise), and a lock body must not await asyncio.sleep/"
        "gather/wait/wait_for (one sleeper serializes every connection); "
        "await writer.drain() under the lock is the sanctioned idiom."
    )
    example_bad = (
        "async def send(self, payload):\n"
        "    self._writer.write(payload)   # interleaves with other senders\n"
        "    await self._writer.drain()"
    )
    example_good = (
        "async def send(self, payload):\n"
        "    async with self._write_lock:\n"
        "        self._writer.write(payload)\n"
        "        await self._writer.drain()"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "repro/service/" not in ctx.path:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr != "write":
                    continue
                receiver = _dotted(node.func.value)
                if receiver is None or "writer" not in receiver.lower():
                    continue
                if ctx.enclosing_function(node) is None:
                    continue
                if _enclosing_lock(ctx, node) is None:
                    yield self.finding(
                        ctx, node,
                        f"{receiver}.write() outside 'async with <lock>': "
                        "concurrent coroutines interleave partial frames; "
                        "guard the write+drain pair with the write lock",
                    )
            elif isinstance(node, ast.Await):
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                qual = ctx.qualified_name(value.func)
                attr = qual.rsplit(".", 1)[-1] if qual else None
                if attr not in _SCHEDULING_AWAITS:
                    continue
                lock = _enclosing_lock(ctx, node)
                if lock is None:
                    continue
                yield self.finding(
                    ctx, node,
                    f"awaiting {attr}() while holding {lock!r} serializes "
                    "every coroutine behind this one; release the lock "
                    "before yielding to the scheduler",
                )


def _is_robustness_writer(path: str) -> bool:
    return "repro/robustness/" in path


@register
class JournalFsyncRule(Rule):
    """RPL049: journal writes must be followed by flush+fsync."""

    code = "RPL049"
    name = "journal-write-no-fsync"
    family = "concurrency"
    description = (
        "In robustness/ writer modules, a file-handle .write() in a function "
        "that never flushes the same handle and os.fsync()s it leaves "
        "acknowledged records in userspace buffers; a crash then violates "
        "the journal's replay guarantee (records ack'd => records durable)."
    )
    example_bad = (
        "def append(self, record):\n"
        "    self._handle.write(json.dumps(record) + '\\n')  # buffered only"
    )
    example_good = (
        "def append(self, record):\n"
        "    self._handle.write(json.dumps(record) + '\\n')\n"
        "    self._handle.flush()\n"
        "    os.fsync(self._handle.fileno())"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _is_robustness_writer(ctx.path):
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            writes: List[ast.Call] = []
            flushed: Set[str] = set()
            fsynced = False
            for node in ast.walk(func):
                if ctx.enclosing_function(node) is not func:
                    continue
                if not isinstance(node, ast.Call):
                    continue
                qual = ctx.qualified_name(node.func)
                if qual == "os.fsync":
                    fsynced = True
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                receiver = _dotted(node.func.value)
                if receiver is None:
                    continue
                if node.func.attr == "write" and self._is_handle(receiver):
                    writes.append(node)
                elif node.func.attr == "flush":
                    flushed.add(receiver)
            for call in writes:
                receiver = _dotted(call.func.value)
                if receiver in flushed and fsynced:
                    continue
                missing = (
                    "flush+fsync" if receiver not in flushed
                    else "os.fsync"
                )
                yield self.finding(
                    ctx, call,
                    f"{receiver}.write() without {missing} in the same "
                    "function; buffered journal records are not durable "
                    "across a crash",
                )

    @staticmethod
    def _is_handle(receiver: str) -> bool:
        low = receiver.rsplit(".", 1)[-1].lower()
        return any(
            tok in low for tok in ("handle", "fh", "file", "journal", "wal")
        ) or low in ("f", "out", "fp")
