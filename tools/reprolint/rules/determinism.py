"""Determinism rules (RPL001–RPL002).

The whole reproduction is seeded: the survey generator, the chaos
harness, synthetic workloads and price processes all take explicit seeds
and derive every draw from ``numpy.random.default_rng(seed)``.  One
unseeded draw — or one wall-clock read inside a simulation path — makes
bills non-replayable and breaks the differential tests that pin the
settlement fast path to the legacy reference.

* **RPL001 (unseeded-random)** — draws through module-level RNG state
  (``random.random()``, ``numpy.random.rand()``, ``np.random.seed``) or
  unseeded generator construction (``default_rng()`` / ``random.Random()``
  with no arguments).
* **RPL002 (wall-clock)** — ``time.time()``, ``datetime.now()``,
  ``os.urandom``, ``uuid.uuid4`` … inside ``src/repro`` simulation
  paths.  The observability layer's wall-clock capture is allowlisted:
  the package itself is exempt, as is any call passed as the
  ``created_unix=`` keyword of a run-manifest constructor.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register

#: Drawing functions on the stdlib ``random`` module's hidden global state.
_RANDOM_MODULE_DRAWS = {
    "random", "randint", "randrange", "uniform", "triangular", "choice",
    "choices", "sample", "shuffle", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "paretovariate",
    "vonmisesvariate", "weibullvariate", "getrandbits", "randbytes", "seed",
}

#: Legacy ``numpy.random`` module-level functions (global RandomState).
_NUMPY_LEGACY_DRAWS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "normal",
    "uniform", "poisson", "exponential", "beta", "gamma", "binomial",
    "lognormal", "standard_normal", "get_state", "set_state",
}

#: Wall-clock / entropy reads disallowed in simulation paths.
_WALL_CLOCK_CALLS = {
    "time.time": "time.time() reads the wall clock",
    "time.time_ns": "time.time_ns() reads the wall clock",
    "datetime.datetime.now": "datetime.now() reads the wall clock",
    "datetime.datetime.utcnow": "datetime.utcnow() reads the wall clock",
    "datetime.datetime.today": "datetime.today() reads the wall clock",
    "datetime.date.today": "date.today() reads the wall clock",
    "os.urandom": "os.urandom() reads OS entropy",
    "uuid.uuid1": "uuid.uuid1() depends on host clock/MAC",
    "uuid.uuid4": "uuid.uuid4() reads OS entropy",
    "secrets.token_bytes": "secrets reads OS entropy",
    "secrets.token_hex": "secrets reads OS entropy",
    "secrets.token_urlsafe": "secrets reads OS entropy",
    "secrets.randbits": "secrets reads OS entropy",
}


def iter_rng_draws(ctx: FileContext):
    """Yield ``(call_node, message)`` for every unseeded-RNG call site.

    The shared detector behind RPL001 and the interprocedural taint pass
    (:mod:`tools.reprolint.project`): module-level ``random`` /
    legacy ``numpy.random`` draws, plus unseeded generator construction.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = ctx.qualified_name(node.func)
        if qual is None:
            continue
        if qual.startswith("random."):
            attr = qual.split(".", 1)[1]
            if attr in _RANDOM_MODULE_DRAWS:
                yield node, (
                    f"random.{attr}() draws from module-level RNG state; "
                    "use an explicitly seeded numpy Generator"
                )
            elif attr == "Random" and not node.args and not node.keywords:
                yield node, "random.Random() without a seed is not replayable"
        elif qual.startswith("numpy.random."):
            attr = qual.split(".")[-1]
            if attr in _NUMPY_LEGACY_DRAWS:
                yield node, (
                    f"numpy.random.{attr}() uses the legacy global "
                    "RandomState; use numpy.random.default_rng(seed)"
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                yield node, (
                    "default_rng() without a seed draws fresh OS entropy; "
                    "pass an explicit seed"
                )


def iter_wall_clock_reads(ctx: FileContext):
    """Yield ``(call_node, message)`` for every wall-clock/entropy read.

    Path-agnostic (scoping is the rule's business, not the detector's);
    the ``created_unix=`` manifest-capture idiom is exempt here too, so
    the taint pass never taints through the one sanctioned read.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = ctx.qualified_name(node.func)
        if qual is None or qual not in _WALL_CLOCK_CALLS:
            continue
        if _is_manifest_capture(ctx, node):
            continue
        yield node, _WALL_CLOCK_CALLS[qual]


def _is_manifest_capture(ctx: FileContext, node: ast.Call) -> bool:
    """True when the call is passed as a ``created_unix=`` keyword.

    That is the run-manifest wall-clock capture pattern
    (``RunManifest(..., created_unix=time.time())``), the one
    sanctioned wall-clock read outside the observability package.
    """
    parent = ctx.parent(node)
    return isinstance(parent, ast.keyword) and parent.arg == "created_unix"


@register
class UnseededRandomRule(Rule):
    """RPL001: no module-level RNG state, no unseeded generators."""

    code = "RPL001"
    name = "unseeded-random"
    family = "determinism"
    description = (
        "Draws through random/numpy.random module-level state, or generator "
        "construction without an explicit seed, are not replayable; use "
        "numpy.random.default_rng(seed) and thread the generator through."
    )
    example_bad = "import random\njitter = random.random()"
    example_good = (
        "import numpy as np\n"
        "rng = np.random.default_rng(seed)\n"
        "jitter = rng.random()"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, message in iter_rng_draws(ctx):
            yield self.finding(ctx, node, message)


@register
class WallClockRule(Rule):
    """RPL002: no wall-clock / OS-entropy reads in simulation paths."""

    code = "RPL002"
    name = "wall-clock"
    family = "determinism"
    description = (
        "Simulation paths under src/repro must be pure functions of their "
        "inputs; wall-clock and entropy reads belong to the observability "
        "layer only (manifest created_unix capture is allowlisted)."
    )
    example_bad = "import time\nstamp = time.time()  # inside src/repro"
    example_good = (
        "manifest = RunManifest(..., created_unix=time.time())  # allowlisted"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_repro_src or ctx.in_observability:
            return
        for node, message in iter_wall_clock_reads(ctx):
            yield self.finding(
                ctx, node,
                f"{message}; simulation paths must be deterministic "
                "(manifest created_unix= capture is exempt)",
            )
