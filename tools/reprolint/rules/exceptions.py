"""Exception-discipline rules (RPL040–RPL043).

:mod:`repro.exceptions` gives the library a single-rooted hierarchy —
``ReproError`` down through per-subsystem subclasses — so embedders can
catch one type and tests can assert precise failure modes.  Bare and
over-broad handlers defeat that design (they also swallow
``KeyboardInterrupt``/``SystemExit`` in the bare case), and raising
builtins from library code forces callers back to ``except Exception``.

* **RPL040 (bare-except)** — ``except:`` with no exception type.
* **RPL041 (swallowed-exception)** — ``except Exception`` /
  ``except BaseException`` whose handler silently discards the error
  (body is only ``pass``/``...``/``continue``, or a bare constant
  ``return`` with the caught exception unused).
* **RPL042 (builtin-raise)** — ``raise ValueError/TypeError/...`` under
  ``src/repro`` where a :mod:`repro.exceptions` subclass exists for the
  subsystem.
* **RPL043 (uncapped-retry)** — a ``while True`` loop that retries on a
  caught exception without an attempt cap or a backoff sleep.  The
  resilient-runtime discipline
  (:class:`repro.robustness.supervisor.RetryPolicy`,
  :meth:`repro.robustness.delivery.DeliveryPolicy.backoff_s`) bounds
  every retry loop; an unbounded hot retry spins forever on a permanent
  failure and hammers whatever it is retrying against.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import FileContext, Finding, Rule, register

_BROAD = {"Exception", "BaseException"}

#: Builtins that should be a ReproError subclass when raised from src/repro.
_BUILTIN_RAISES = {
    "ValueError", "TypeError", "RuntimeError", "KeyError", "IndexError",
    "ArithmeticError", "ZeroDivisionError", "Exception", "OSError",
}

#: src/repro/<subpackage> -> suggested domain exception.
_SUGGESTED = {
    "units.py": "UnitError",
    "timeseries": "TimeSeriesError",
    "contracts": "ContractError (or TariffError/BillingError/MeteringError)",
    "grid": "GridError (or MarketError/DispatchError)",
    "facility": "FacilityError (or SchedulerError/WorkloadError)",
    "dr": "DemandResponseError (or FlexibilityError)",
    "survey": "SurveyError",
    "analysis": "AnalysisError",
    "reporting": "ReportingError",
    "robustness": "RobustnessError (or DataQualityError/SignalDeliveryError)",
    "observability": "ObservabilityError",
}


def _handler_type_name(handler: ast.ExceptHandler) -> Optional[str]:
    t = handler.type
    if t is None:
        return None
    if isinstance(t, ast.Name):
        return t.id
    if isinstance(t, ast.Attribute):
        return t.attr
    return "<tuple>"


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler discards the exception without a trace."""
    body = handler.body
    if all(
        isinstance(stmt, ast.Pass)
        or isinstance(stmt, ast.Continue)
        or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
        for stmt in body
    ):
        return True
    if (
        len(body) == 1
        and isinstance(body[0], ast.Return)
        and (body[0].value is None or isinstance(body[0].value, ast.Constant))
        and handler.name is None
    ):
        return True
    return False


@register
class BareExceptRule(Rule):
    """RPL040: no bare ``except:`` clauses."""

    code = "RPL040"
    name = "bare-except"
    family = "exceptions"
    description = (
        "`except:` catches KeyboardInterrupt and SystemExit too; name the "
        "exception — ideally a repro.exceptions subclass."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' also swallows KeyboardInterrupt/"
                    "SystemExit; catch a named exception type",
                )


@register
class SwallowedExceptionRule(Rule):
    """RPL041: broad handlers must not silently discard errors."""

    code = "RPL041"
    name = "swallowed-exception"
    family = "exceptions"
    description = (
        "`except Exception` whose body is pass/`return <const>` hides real "
        "failures (including bugs in our own kernels); narrow the type or "
        "record why discarding is safe."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            tname = _handler_type_name(node)
            if tname in _BROAD and _swallows(node):
                yield self.finding(
                    ctx, node,
                    f"'except {tname}' silently discards the error; narrow "
                    "the exception type or handle it explicitly",
                )


@register
class BuiltinRaiseRule(Rule):
    """RPL042: raise domain exceptions from library code."""

    code = "RPL042"
    name = "builtin-raise"
    family = "exceptions"
    description = (
        "Library code under src/repro raising ValueError/TypeError/... "
        "breaks the single-rooted ReproError contract; raise the "
        "subsystem's repro.exceptions subclass."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_repro_src:
            return
        suggestion = self._suggestion(ctx.path)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _BUILTIN_RAISES:
                yield self.finding(
                    ctx, node,
                    f"raises builtin {name}; raise {suggestion} instead so "
                    "callers can catch ReproError",
                )

    @staticmethod
    def _suggestion(path: str) -> str:
        parts = path.split("/")
        key = parts[2] if len(parts) > 2 else ""
        return _SUGGESTED.get(key, "a repro.exceptions.ReproError subclass")


#: Substrings of a Name that mark it as an attempt/retry counter.
_ATTEMPT_NAMES = ("attempt", "retry", "retries", "tries", "failures")


def _is_forever(test: ast.expr) -> bool:
    """True for a ``while True`` (or other truthy-constant) loop test."""
    return isinstance(test, ast.Constant) and bool(test.value)


def _names_attempt_counter(node: ast.AST) -> bool:
    """Any Name/Attribute under ``node`` that looks like an attempt tally."""
    for sub in ast.walk(node):
        ident = None
        if isinstance(sub, ast.Name):
            ident = sub.id
        elif isinstance(sub, ast.Attribute):
            ident = sub.attr
        if ident is not None:
            low = ident.lower()
            if any(marker in low for marker in _ATTEMPT_NAMES):
                return True
    return False


def _has_attempt_cap(loop: ast.While) -> bool:
    """A comparison against an attempt-like counter anywhere in the loop."""
    for sub in ast.walk(loop):
        if isinstance(sub, ast.Compare) and _names_attempt_counter(sub):
            return True
    return False


def _has_backoff_call(loop: ast.While) -> bool:
    """A ``sleep``/``backoff*``/``wait*`` call anywhere in the loop body."""
    for sub in ast.walk(loop):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            continue
        low = name.lower()
        if low == "sleep" or low.startswith("backoff") or low.startswith("wait"):
            return True
    return False


def _retries_on_exception(loop: ast.While) -> bool:
    """The loop body catches an exception and keeps looping.

    True when a handler (directly inside the loop, not in a nested loop)
    either ``continue``-s explicitly or falls through without leaving the
    loop (no ``break``/``return``/``raise`` in its body) — both shapes
    re-enter the ``while`` and re-try the guarded work.
    """
    for sub in ast.walk(loop):
        if not isinstance(sub, ast.ExceptHandler):
            continue
        leaves = False
        for stmt in sub.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.Break, ast.Return, ast.Raise)):
                    leaves = True
        if not leaves:
            return True
    return False


@register
class UncappedRetryRule(Rule):
    """RPL043: retry loops must bound attempts or back off."""

    code = "RPL043"
    name = "uncapped-retry"
    family = "exceptions"
    description = (
        "`while True` retrying on a caught exception without an attempt "
        "cap or a backoff sleep spins forever on permanent failures; "
        "bound the attempts (RetryPolicy-style) or back off between tries."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While) or not _is_forever(node.test):
                continue
            if not _retries_on_exception(node):
                continue
            if _has_attempt_cap(node) or _has_backoff_call(node):
                continue
            yield self.finding(
                ctx, node,
                "unbounded retry: 'while True' re-tries on a caught "
                "exception with no attempt cap and no backoff; add a "
                "bounded attempt counter or a sleep/backoff between tries",
            )
