"""Float / money comparison rule (RPL050).

Settled bills are sums of thousands of interval products; two
mathematically equal totals routinely differ in the last ulp.  The
library therefore compares settled quantities through tolerance helpers
(``PowerSeries.approx_equal``, ``Reconciliation.within_tolerance``,
``Money.is_zero``) — never with raw ``==``.

**RPL050 (float-equality)** flags ``==`` / ``!=`` in ``src/repro``
where either side is visibly float-typed: a non-zero float literal, a
``float(...)`` conversion, arithmetic over such, or a name carrying a
money/energy/power unit suffix (``_usd``/``_kwh``/``_kw``/...).

Deliberate exemptions, documented in the rule catalog:

* comparisons against the literal ``0.0`` — the exact-zero *guard*
  pattern (``if duration_s == 0.0: raise``) protects divisions and is
  exact by construction;
* comparisons against ``float("inf")`` / ``float("-inf")`` — infinities
  are exactly representable sentinels;
* time-suffixed names (``_s``) — metering geometry (intervals, period
  edges) is constructed, not accumulated, and identity checks on it are
  the library's interval-mismatch guards;
* tolerance helpers themselves (functions whose name contains
  ``approx`` / ``close`` / ``tolerance`` / ``is_zero``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import FileContext, Finding, Rule, register

_FLOAT_SUFFIXES = (
    "_usd", "_eur", "_chf", "_kwh", "_mwh", "_wh", "_kw", "_mw", "_w",
)
_HELPER_MARKERS = ("approx", "close", "tolerance", "is_zero", "isclose")


def _is_zero_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value == 0.0 and not isinstance(
        node.value, bool
    )


def _is_inf_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    )


def _floaty(node: ast.AST) -> bool:
    """True when ``node`` is visibly a computed float expression."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float) and node.value != 0.0
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "float":
        return not _is_inf_call(node)
    if isinstance(node, (ast.Name, ast.Attribute)):
        ident = node.id if isinstance(node, ast.Name) else node.attr
        low = ident.lower()
        return "_per_" not in low and low.endswith(_FLOAT_SUFFIXES)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
    ):
        return _floaty(node.left) or _floaty(node.right)
    if isinstance(node, ast.UnaryOp):
        return _floaty(node.operand)
    return False


@register
class FloatEqualityRule(Rule):
    """RPL050: no raw ``==``/``!=`` on computed float quantities."""

    code = "RPL050"
    name = "float-equality"
    family = "float-compare"
    description = (
        "Direct ==/!= between float-typed expressions in src/repro is "
        "last-ulp roulette for settled money/energy; use the tolerance "
        "helpers (approx_equal, within_tolerance, math.isclose). Exact "
        "zero/infinity guards are exempt."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_repro_src:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            func = ctx.enclosing_function(node)
            if func is not None and self._is_tolerance_helper(func.name):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_zero_literal(left) or _is_zero_literal(right):
                    continue
                if _is_inf_call(left) or _is_inf_call(right):
                    continue
                if _floaty(left) or _floaty(right):
                    yield self.finding(
                        ctx, node,
                        "direct ==/!= on a float-typed expression; compare "
                        "through a tolerance helper (approx_equal / "
                        "within_tolerance / math.isclose)",
                    )
                    break

    @staticmethod
    def _is_tolerance_helper(name: Optional[str]) -> bool:
        low = (name or "").lower()
        return any(marker in low for marker in _HELPER_MARKERS)
