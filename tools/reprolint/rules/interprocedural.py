"""Interprocedural determinism rule (RPL003).

RPL001/RPL002 flag the draw or clock read *where it happens*.  That is
not enough once helpers are layered: a pricing kernel that calls a
helper two modules away which calls ``random.random()`` is just as
non-replayable as one that draws inline, yet per-file analysis cannot
see it.  This rule runs on the cross-module call graph
(:class:`tools.reprolint.project.ProjectContext`) after the taint
fixpoint has marked every function that *transitively* reaches an
unseeded draw or a wall-clock read.

* **RPL003 (tainted-call)** — a function in a simulation path
  (``src/repro`` outside ``observability``) calls a tainted function.
  The finding lands on the call site and carries the witness chain down
  to the original source, so the diagnostic reads like a stack trace.
  Seeded constructions (``random.Random(seed)``,
  ``default_rng(seed)``) never taint; the observability layer's
  sanctioned wall-clock capture does not either.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import Finding, ProjectRule, register


def _in_sim_path(label: str) -> bool:
    return label.startswith("src/repro/") and not label.startswith(
        "src/repro/observability/"
    )


@register
class TaintedCallRule(ProjectRule):
    """RPL003: sim-path callers of transitively nondeterministic helpers."""

    code = "RPL003"
    name = "tainted-call"
    family = "determinism"
    description = (
        "A simulation-path function calls a helper that transitively reaches "
        "an unseeded random/numpy draw or a wall-clock read (cross-module "
        "taint fixpoint); every bill computed through it is non-replayable. "
        "Seed the helper explicitly and thread the generator through."
    )
    example_bad = (
        "# a.py (sim path)\n"
        "from .b import jitter\n"
        "def simulate(load_kw):\n"
        "    return load_kw * jitter()   # RPL003: jitter -> random.random\n"
        "# b.py\n"
        "import random\n"
        "def jitter():\n"
        "    return random.random()"
    )
    example_good = (
        "# b.py\n"
        "import numpy as np\n"
        "def jitter(rng):\n"
        "    return rng.random()\n"
        "# a.py\n"
        "def simulate(load_kw, seed):\n"
        "    return load_kw * jitter(np.random.default_rng(seed))"
    )

    def check_project(self, project) -> Iterator[Finding]:
        taint = project.taint()
        edges = project.edges()
        for fid, summary, info in project.iter_target_functions():
            if not _in_sim_path(summary.label):
                continue
            for callee, site in edges.get(fid, ()):
                if callee == fid or callee not in taint:
                    continue
                reason = taint[callee]
                chain = " -> ".join(reason.chain)
                yield Finding(
                    path=summary.label,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    name=self.name,
                    family=self.family,
                    message=(
                        f"{info.qualname!r} calls tainted {callee!r}: "
                        f"{reason.source_message} "
                        f"({reason.source_label}:{reason.source_line}, "
                        f"via {chain})"
                    ),
                )
