"""Observability-gating rules (RPL030–RPL031).

PR 3's contract: the observability layer is **off by default** and every
instrumented call site pays exactly one boolean read
(:func:`repro.perfconfig.observability_enabled`) when disabled.  That
only holds if call sites actually check the switch before building
argument tuples and calling into :mod:`repro.observability` — and if
spans are always opened as context managers, so exception paths close
them.

* **RPL030 (ungated-observability)** — a call through an alias of a
  ``repro.observability`` submodule (``_metrics.inc(...)``,
  ``_trace.emit(...)``, ``_manifest.record(...)``) with no enclosing
  guard.  Recognized guards, matching the idioms already in tree:

  - an ancestor ``if`` whose test calls ``observability_enabled()``;
  - an ancestor ``if`` whose test reads a local previously assigned from
    ``observability_enabled()`` (the ``observed = ...`` pattern);
  - an earlier early-return ``if`` in the same function whose test reads
    the switch and whose body ends in ``return``/``raise``.

  ``.span(...)`` is exempt here (it self-gates by returning the shared
  ``NULL_SPAN``) and governed by RPL031 instead.
* **RPL031 (span-outside-with)** — ``span(...)`` used anywhere but as a
  ``with`` context expression.  A span held in a variable leaks open on
  exceptions and skews every enclosing duration.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..engine import FileContext, Finding, Rule, register


def _calls_switch(node: ast.AST) -> bool:
    """True when ``node`` contains a call to ``*observability_enabled``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            attr = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if attr == "observability_enabled":
                return True
    return False


def _switch_locals(func: ast.AST) -> Set[str]:
    """Local names bound from ``observability_enabled()`` in ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _calls_switch(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _reads_switch(test: ast.AST, switch_names: Set[str]) -> bool:
    if _calls_switch(test):
        return True
    for sub in ast.walk(test):
        if isinstance(sub, ast.Name) and sub.id in switch_names:
            return True
    return False


@register
class UngatedObservabilityRule(Rule):
    """RPL030: observability call sites pay one boolean read when off."""

    code = "RPL030"
    name = "ungated-observability"
    family = "observability"
    description = (
        "Calls into repro.observability (metrics/trace/manifest) must sit "
        "behind an observability_enabled() check — an `if observed:` block "
        "or an early-return guard — so the disabled mode costs one boolean "
        "read and zero allocations per site."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_observability or not ctx.obs_aliases:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
                continue
            alias = func.value.id
            if alias not in ctx.obs_aliases or func.attr == "span":
                continue
            if self._guarded(ctx, node):
                continue
            yield self.finding(
                ctx, node,
                f"{alias}.{func.attr}(...) is not guarded by an "
                "observability_enabled() read (`if observed:` block or "
                "early-return guard); disabled runs would pay for it",
            )

    def _guarded(self, ctx: FileContext, call: ast.Call) -> bool:
        func = ctx.enclosing_function(call)
        switch_names = _switch_locals(func) if func is not None else set()
        # ancestor if / ternary reading the switch
        child: ast.AST = call
        for anc in ctx.ancestors(call):
            if isinstance(anc, ast.If) and _reads_switch(anc.test, switch_names):
                return True
            if isinstance(anc, ast.IfExp) and _reads_switch(anc.test, switch_names):
                return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            child = anc
        # early-return guard earlier in the same function
        if func is not None:
            for stmt in self._statements(func):
                if stmt.lineno >= call.lineno:
                    break
                if (
                    isinstance(stmt, ast.If)
                    and _reads_switch(stmt.test, switch_names)
                    and stmt.body
                    and isinstance(stmt.body[-1], (ast.Return, ast.Raise))
                ):
                    return True
        return False

    @staticmethod
    def _statements(func: ast.AST) -> List[ast.stmt]:
        return list(func.body)


@register
class SpanOutsideWithRule(Rule):
    """RPL031: spans must be opened in a ``with`` block."""

    code = "RPL031"
    name = "span-outside-with"
    family = "observability"
    description = (
        "span(...) returns a context manager; holding it in a variable or "
        "passing it around leaks the span open on exception paths — always "
        "`with _trace.span(...):`."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_observability:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_span_call(ctx, node):
                continue
            parent = ctx.parent(node)
            if isinstance(parent, ast.withitem) and parent.context_expr is node:
                continue
            yield self.finding(
                ctx, node,
                "span(...) opened outside a `with` block; exception paths "
                "leak it open",
            )

    @staticmethod
    def _is_span_call(ctx: FileContext, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            return func.value.id in ctx.obs_aliases and func.attr == "span"
        if isinstance(func, ast.Name):
            qual = ctx.imports.get(func.id, "")
            return qual.endswith("trace.span") or (
                "observability" in qual and qual.endswith(".span")
            )
        return False
