"""Performance rules for the columnar billing kernels (RPL045).

The whole point of :mod:`repro.contracts.columnar` is that pricing a
population costs a handful of NumPy passes over the site-major matrix.
A Python-level ``for`` loop that walks the site axis inside a kernel
silently reintroduces the O(n_sites) interpreter overhead the columnar
representation exists to eliminate — it still produces correct numbers,
which is exactly why only a lint catches it before the benchmark gate
does.

* **RPL045 (python-loop-over-site-axis)** — a ``for``/``async for``
  inside a kernel function of ``contracts/columnar.py`` whose iterable
  mentions a site-axis quantity (``loads_kw``, ``n_sites``, per-site
  ``totals``/``amounts``/``quantities``, or any ``*_matrix``).  The
  audit-grade materializers (``materialize``/``iter_bills``/
  ``site_series``) and the ``_scalar``-prefixed fallback replicas are
  per-site *by contract* and are allowlisted.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import FileContext, Finding, Rule, register

#: Terminal identifiers that name site-axis data: iterating any of these
#: in Python walks one element per site (or per site-row of the matrix).
_SITE_AXIS_NAMES = {
    "loads_kw",
    "n_sites",
    "sites",
    "totals",
    "amounts",
    "quantities",
    "site_peaks_kw",
}

#: Identifier suffixes that name whole site-major matrices.
_SITE_AXIS_SUFFIXES = ("_matrix",)

#: Function names that are per-site by contract: the audit-grade
#: materializers and the exact scalar fallback replicas.
_ALLOWLISTED_FUNCTIONS = {"iter_bills", "site_series", "from_series"}


def _is_kernel_path(path: str) -> bool:
    return path.endswith("contracts/columnar.py")


def _is_allowlisted(name: str) -> bool:
    return (
        name in _ALLOWLISTED_FUNCTIONS
        or name.startswith("_scalar")
        or "materialize" in name
    )


def _site_axis_names(iterable: ast.AST) -> Set[str]:
    """Site-axis identifiers mentioned anywhere in the loop's iterable."""
    hits: Set[str] = set()
    for node in ast.walk(iterable):
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            ident = node.attr
        else:
            continue
        if ident in _SITE_AXIS_NAMES or ident.endswith(_SITE_AXIS_SUFFIXES):
            hits.add(ident)
    return hits


@register
class PythonLoopOverSiteAxisRule(Rule):
    """RPL045: columnar kernels must not walk the site axis in Python."""

    code = "RPL045"
    name = "python-loop-over-site-axis"
    family = "perf"
    description = (
        "a Python for-loop over the site axis inside a columnar kernel "
        "reintroduces the O(n_sites) interpreter overhead the site-major "
        "matrix eliminates; express the reduction as a vectorized NumPy "
        "pass (materializers and _scalar fallbacks are exempt)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _is_kernel_path(ctx.path):
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _is_allowlisted(func.name):
                continue
            for node in ast.walk(func):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                # A loop nested in an allowlisted inner function belongs
                # to that function, not to `func`.
                owner = next(
                    (
                        a
                        for a in ctx.ancestors(node)
                        if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                    ),
                    None,
                )
                if owner is not func:
                    continue
                hits = _site_axis_names(node.iter)
                if not hits:
                    continue
                yield self.finding(
                    ctx, node,
                    f"kernel function {func.name!r} iterates the site axis "
                    f"in Python (over {', '.join(sorted(hits))}); columnar "
                    "kernels must price all sites per NumPy pass",
                )
