"""Bounded wire reads in the serving and chaos layers (RPL051).

``StreamReader.readline()`` buffers until it sees a newline — with the
default 64 KiB stream limit a hostile or faulty peer can still force a
surprising amount of buffering, and more importantly the *chosen* frame
bound is invisible at the read site.  The service and robustness layers
therefore construct every stream with an explicit ``limit=`` (the
server's ``max_frame_bytes``, the proxy's spec bound), which turns an
oversized frame into a catchable ``LimitOverrunError`` with a known
threshold instead of unbounded memory growth.

* **RPL051 (unbounded-readline)** — a call to
  ``asyncio.open_connection(...)`` or ``asyncio.start_server(...)``
  without a ``limit=`` keyword, in a file under ``src/repro/service/``
  or ``src/repro/robustness/`` that also awaits ``.readline()``.  The
  construction site is flagged (that is where the bound belongs); files
  that never read lines are exempt, as are readers obtained elsewhere
  (the bound is their constructor's responsibility).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..engine import FileContext, Finding, Rule, register

#: Stream constructors whose ``limit=`` bounds every later ``readline()``.
_STREAM_CONSTRUCTORS = {"asyncio.open_connection", "asyncio.start_server"}


def _in_scope(path: str) -> bool:
    return "repro/service/" in path or "repro/robustness/" in path


def _awaits_readline(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Await)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr == "readline"
        ):
            return True
    return False


@register
class UnboundedReadlineRule(Rule):
    """RPL051: line-reading streams must be constructed with ``limit=``."""

    code = "RPL051"
    name = "unbounded-readline"
    family = "concurrency"
    description = (
        "an asyncio stream constructed without limit= in a file that "
        "awaits readline() leaves the frame size bound implicit (64 KiB "
        "default); pass limit=<max frame bytes> at open_connection/"
        "start_server so oversized frames fail loudly and boundedly."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_scope(ctx.path):
            return
        unbounded: List[ast.Call] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.qualified_name(node.func)
            if qualname not in _STREAM_CONSTRUCTORS:
                continue
            if not any(kw.arg == "limit" for kw in node.keywords):
                unbounded.append(node)
        if not unbounded or not _awaits_readline(ctx.tree):
            return
        for call in unbounded:
            qualname = ctx.qualified_name(call.func)
            yield self.finding(
                ctx, call,
                f"{qualname}(...) without limit= feeds an unbounded "
                "readline(); pass limit=<max frame bytes> so oversized "
                "frames raise LimitOverrunError instead of buffering",
            )
