"""Serialization-determinism rules (RPL044).

The crash-safe journal (``repro-journal-v1``), the shard journals and
sweep manifests of the sharded fabric, and the observability run
manifests all promise *stable* on-disk bytes: resuming a sweep, merging
shard journals bit-identically, and diffing manifests across runs all
depend on the same object serializing to the same line every time.
Python dicts preserve insertion order, so ``json.dumps`` without
``sort_keys=True`` silently couples the written bytes to code paths —
two writers that build the same mapping in different orders produce
different journals for identical state.

* **RPL044 (unsorted-json-dump)** — a ``json.dumps``/``json.dump`` call
  in a journal/manifest/shard writer module under ``src/repro`` that
  does not pass ``sort_keys=True``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register

#: Path fragments (POSIX, relative) that mark a durable-format writer
#: module: the sweep journal, the sharded fabric, and run manifests.
_WRITER_PATH_MARKERS = ("journal", "manifest", "shards")


def _is_writer_path(path: str) -> bool:
    name = path.rsplit("/", 1)[-1]
    return any(marker in name for marker in _WRITER_PATH_MARKERS)


def _sort_keys_is_true(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "sort_keys":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
        if kw.arg is None:
            # **kwargs may carry sort_keys=True; give it the benefit of
            # the doubt rather than flag a call we cannot see into.
            return True
    return False


@register
class UnsortedJsonDumpRule(Rule):
    """RPL044: journal/manifest writers must serialize with sorted keys."""

    code = "RPL044"
    name = "unsorted-json-dump"
    family = "serialization"
    description = (
        "json.dumps/json.dump without sort_keys=True in a journal/"
        "manifest/shard writer couples the on-disk bytes to dict "
        "insertion order; merge determinism and bit-identical resume "
        "require stable serialization."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_repro_src or not _is_writer_path(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual not in ("json.dumps", "json.dump"):
                continue
            if _sort_keys_is_true(node):
                continue
            yield self.finding(
                ctx, node,
                f"{qual} without sort_keys=True in a durable-format writer; "
                "journal/manifest bytes must not depend on dict insertion "
                "order — pass sort_keys=True",
            )
