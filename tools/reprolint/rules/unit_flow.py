"""Unit-dimension dataflow rule (RPL012).

RPL010 needs both operands of an additive expression to *spell* their
unit in a suffix.  RPL012 closes the gap it leaves: the unit that flowed
through an unsuffixed local, an assignment chain, or a helper call
before reaching the mixing site.  The inference engine is the abstract
interpreter in :mod:`tools.reprolint.dataflow` (dimension vectors over
energy/time/money with kW·h→kWh, kWh/h→kW, USD/kWh·kWh→USD algebra).

* **RPL012 (unit-flow-mismatch)** — an addition, subtraction,
  comparison, or suffix-named assignment whose two sides carry
  *different inferred dimension vectors* after dataflow.  Sites where
  both operands already carry explicit unit suffixes are RPL010's
  territory and are skipped here, so one bug never produces two codes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..dataflow import DimMismatch, analyze_function, describe_dim
from ..engine import FileContext, Finding, Rule, register
from .units import unit_of


def _covered_by_rpl010(mismatch: DimMismatch) -> bool:
    """True when RPL010's same-expression suffix matching already fires."""
    node = mismatch.node
    if isinstance(node, ast.BinOp):
        operands = [node.left, node.right]
    elif isinstance(node, ast.AugAssign):
        operands = [node.target, node.value]
    elif isinstance(node, ast.Compare):
        operands = [node.left] + list(node.comparators)
    else:
        return False
    units = [unit_of(op) for op in operands]
    return all(u is not None for u in units) and len(set(units)) > 1


@register
class UnitFlowMismatchRule(Rule):
    """RPL012: dimension mismatch after flow through variables and calls."""

    code = "RPL012"
    name = "unit-flow-mismatch"
    family = "units"
    description = (
        "A value's inferred dimension (tracked through assignments, "
        "arithmetic and helper-call returns) disagrees with the dimension "
        "of the quantity it is added to, compared with, or assigned into; "
        "kW flowing into a kWh sum corrupts every bill downstream."
    )
    example_bad = (
        "def settle(peak_kw: float, total_kwh: float):\n"
        "    power = peak_kw          # dimension kW flows into 'power'\n"
        "    return total_kwh + power # RPL012: kWh (energy) + kW (power)"
    )
    example_good = (
        "def settle(peak_kw: float, total_kwh: float, interval_h: float):\n"
        "    energy = peak_kw * interval_h   # kW x h -> kWh\n"
        "    return total_kwh + energy"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for mismatch in analyze_function(func):
                if _covered_by_rpl010(mismatch):
                    continue
                yield self.finding(
                    ctx,
                    mismatch.node,
                    f"{mismatch.what} mixes inferred dimensions: "
                    f"{describe_dim(mismatch.left)} vs "
                    f"{describe_dim(mismatch.right)}; "
                    "convert via repro.units at the boundary",
                )
