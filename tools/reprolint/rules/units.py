"""Units-discipline rules (RPL010–RPL011).

The library's canonical-unit convention (see :mod:`repro.units`) encodes
physical dimension and scale in variable-name suffixes: ``peak_kw`` is
power in kilowatts, ``energy_kwh`` energy in kilowatt-hours,
``interval_s`` seconds, ``total_usd`` money.  The Xu & Li demand-charge
line of work (and the paper's own Figure-1 typology) mixes kW and kWh
terms in one bill — which is exactly why silently adding a ``_kw`` to a
``_kwh`` is the highest-severity unit bug this codebase can have.

* **RPL010 (mixed-units)** — additive arithmetic (``+``/``-``, including
  augmented assignment) or comparison between expressions whose name
  suffixes carry *different* units.  Cross-dimension mixes (power vs
  energy) and same-dimension scale mixes (``_kw`` vs ``_mw``) are both
  flagged.  Multiplication/division is exempt (that is how units are
  legitimately combined), as are names containing ``_per_`` (rates).
  Calls to the canonical constructors in :mod:`repro.units` carry their
  *canonical* unit, so ``total_kw + mw(5)`` is correct and not flagged.
* **RPL011 (unitless-param)** — a public function under ``src/repro``
  with a ``float``-annotated parameter whose name has no recognized unit
  suffix, no dimensionless marker, and no unit mention in the docstring.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..engine import FileContext, Finding, Rule, register

#: suffix -> (unit label, physical dimension)
_UNIT_SUFFIXES = {
    "_w": ("W", "power"),
    "_kw": ("kW", "power"),
    "_mw": ("MW", "power"),
    "_wh": ("Wh", "energy"),
    "_kwh": ("kWh", "energy"),
    "_mwh": ("MWh", "energy"),
    "_ms": ("ms", "time"),
    "_s": ("s", "time"),
    "_min": ("min", "time"),
    "_usd": ("USD", "money"),
    "_eur": ("EUR", "money"),
    "_chf": ("CHF", "money"),
}

#: repro.units constructors normalize to canonical units at the boundary.
_CANONICAL_CONSTRUCTORS = {
    "kw": "_kw", "mw": "_kw", "watts": "_kw",
    "kwh": "_kwh", "mwh": "_kwh",
    "hours": "_s", "minutes": "_s", "days": "_s",
    "energy_kwh": "_kwh", "average_power_kw": "_kw",
}

#: Dimensionless / structural suffixes and names exempt from RPL011.
_DIMENSIONLESS_SUFFIXES = (
    "_frac", "_fraction", "_ratio", "_pct", "_share", "_factor", "_scale",
    "_seed", "_tol", "_weight", "_prob", "_probability", "_exponent",
    "_sigma", "_mu", "_count", "_n", "_index", "_id", "_level", "_quantile",
)

#: Spelled-out time suffixes: unambiguous units, accepted by RPL011 but not
#: tracked by RPL010 (no canonical-form confusion to catch).
_TIME_WORD_SUFFIXES = ("_years", "_year", "_days", "_day", "_hours", "_hour",
                       "_minutes", "_h")
_PARAM_ALLOWLIST = {
    "seed", "n", "count", "size", "tol", "rtol", "atol", "fraction", "frac",
    "ratio", "share", "scale", "factor", "quantile", "percentile", "prob",
    "probability", "weight", "alpha", "beta", "gamma", "sigma", "mu",
    "exponent", "level", "lo", "hi", "growth", "slack", "headroom",
}

#: Unit / dimension vocabulary accepted as a docstring annotation.
_DOC_UNIT_TOKEN = re.compile(
    r"(\bk?W\b|\bkWh\b|\bMWh?\b|watt|kilowatt|megawatt|\bsecond|\bhour"
    r"|\bminute|\bday|\byear|\bUSD\b|\$|/kWh|/kW\b|per kWh|per kW\b"
    r"|currency|\bmoney\b|dimensionless|unitless|\bfraction|\bratio\b"
    r"|\bshare\b|\bpercent|\bprobability\b|\bmultiplier\b|\bscalar\b"
    r"|\bweight\b|\bfactor\b|\bquantile\b|\bseed\b|\bin \[0, ?1\]|\[0, ?1\))",
)


def _suffix_of(identifier: str) -> Optional[str]:
    """The recognized unit suffix of ``identifier``, if any."""
    low = identifier.lower()
    if "_per_" in low:
        return None  # rates carry compound units; out of scope
    for suffix in _UNIT_SUFFIXES:
        if low.endswith(suffix):
            return suffix
    return None


def unit_of(node: ast.AST) -> Optional[str]:
    """Best-effort unit suffix of an expression, or None when unknown.

    Conservative by design: anything not obviously unit-bearing returns
    None, and None never participates in a mismatch.
    """
    if isinstance(node, ast.Name):
        return _suffix_of(node.id)
    if isinstance(node, ast.Attribute):
        return _suffix_of(node.attr)
    if isinstance(node, ast.Subscript):
        return unit_of(node.value)
    if isinstance(node, ast.UnaryOp):
        return unit_of(node.operand)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            canonical = _CANONICAL_CONSTRUCTORS.get(node.func.id)
            if canonical is not None:
                return canonical
        if isinstance(node.func, ast.Attribute):
            # accessor methods named by unit (load.mean_kw(), b.total_usd())
            return _suffix_of(node.func.attr)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left, right = unit_of(node.left), unit_of(node.right)
        if left is not None and right is not None and left == right:
            return left
        return left if right is None else right if left is None else None
    return None


def _describe(suffix: str) -> str:
    label, dim = _UNIT_SUFFIXES[suffix]
    return f"{label} ({dim})"


@register
class MixedUnitsRule(Rule):
    """RPL010: additive arithmetic / comparison across unit suffixes."""

    code = "RPL010"
    name = "mixed-units"
    family = "units"
    description = (
        "Adding, subtracting or comparing quantities whose name suffixes "
        "carry different units (kW vs kWh vs s vs USD, or kW vs MW) silently "
        "corrupts bills; convert via repro.units at the boundary first."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._pairwise(ctx, node, node.left, node.right, "arithmetic")
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._pairwise(ctx, node, node.target, node.value, "arithmetic")
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for left, right in zip(operands, operands[1:]):
                    yield from self._pairwise(ctx, node, left, right, "comparison")

    def _pairwise(
        self,
        ctx: FileContext,
        site: ast.AST,
        left: ast.AST,
        right: ast.AST,
        what: str,
    ) -> Iterator[Finding]:
        lu, ru = unit_of(left), unit_of(right)
        if lu is None or ru is None or lu == ru:
            return
        _, ldim = _UNIT_SUFFIXES[lu]
        _, rdim = _UNIT_SUFFIXES[ru]
        kind = "mixes dimensions" if ldim != rdim else "mixes scales"
        yield self.finding(
            ctx, site,
            f"{what} {kind}: {_describe(lu)} vs {_describe(ru)}; "
            "convert via repro.units first",
        )


@register
class UnitlessParamRule(Rule):
    """RPL011: public float params must declare their unit."""

    code = "RPL011"
    name = "unitless-param"
    family = "units"
    description = (
        "Public functions under src/repro taking float parameters must name "
        "the unit in a suffix (_kw/_kwh/_s/_usd/...), use a dimensionless "
        "marker (_frac/_ratio/...), or state the unit in the docstring."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_repro_src or ctx.in_observability:
            # metric values are dimensionless by design; the observability
            # API is documented in its own generated manual
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if ctx.enclosing_function(node) is not None:
                continue  # nested helpers are not public API
            if self._enclosing_class_private(ctx, node):
                continue
            doc = ast.get_docstring(node) or ""
            args = list(node.args.posonlyargs) + list(node.args.args) + list(
                node.args.kwonlyargs
            )
            for arg in args:
                if arg.arg in ("self", "cls"):
                    continue
                if not self._is_float_annotation(arg.annotation):
                    continue
                if self._declares_unit(arg.arg, doc):
                    continue
                yield Finding(
                    path=ctx.path,
                    line=arg.lineno,
                    col=arg.col_offset,
                    code=self.code,
                    name=self.name,
                    family=self.family,
                    message=(
                        f"float parameter {arg.arg!r} of public function "
                        f"{node.name!r} declares no unit (suffix, "
                        "dimensionless marker, or docstring annotation)"
                    ),
                )

    @staticmethod
    def _enclosing_class_private(ctx: FileContext, node: ast.AST) -> bool:
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.ClassDef) and anc.name.startswith("_"):
                return True
        return False

    @staticmethod
    def _is_float_annotation(annotation: Optional[ast.AST]) -> bool:
        return isinstance(annotation, ast.Name) and annotation.id == "float"

    @staticmethod
    def _declares_unit(name: str, doc: str) -> bool:
        low = name.lower()
        if low in _PARAM_ALLOWLIST:
            return True
        if "_per_" in low:
            return True  # compound rate unit spelled out (usd_per_kwh, ...)
        if _suffix_of(name) is not None:
            return True
        if low.endswith(_DIMENSIONLESS_SUFFIXES) or low.endswith(_TIME_WORD_SUFFIXES):
            return True
        if any(tok in low for tok in ("fraction", "ratio", "share", "scale", "seed")):
            return True
        if name in doc and _DOC_UNIT_TOKEN.search(doc):
            return True
        return False
