"""SARIF 2.1.0 serialization of reprolint findings.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what CI platforms ingest to annotate findings inline on diffs.  The
document produced here is deliberately minimal but complete against the
2.1.0 required fields:

* ``version`` / ``$schema`` at the top level;
* one run with ``tool.driver`` (``name``, ``informationUri``,
  ``rules`` — one ``reportingDescriptor`` per distinct rule, with
  ``id``, ``name``, ``shortDescription``, ``fullDescription``);
* one ``result`` per finding with ``ruleId``, ``ruleIndex``, ``level``,
  ``message.text`` and a ``physicalLocation`` (URI + line/column
  region, 1-based as the spec requires — reprolint's 0-based columns
  are shifted by one).

Everything is emitted in sorted order so serial and parallel runs
produce byte-identical documents.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .engine import Finding, all_rules

__all__ = ["to_sarif", "render_sarif"]

_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://github.com/paper-repro/contracts-hpc-epp"


def to_sarif(findings: Sequence[Finding]) -> Dict[str, object]:
    """Build the SARIF 2.1.0 document (as a plain dict) for findings.

    Rules are listed for every registered rule that appears in the
    findings, indexed deterministically by code; results reference them
    through ``ruleIndex``.

    >>> f = Finding(path="src/x.py", line=3, col=0, code="RPL020",
    ...             name="mutable-default", family="interface",
    ...             message="mutable default")
    >>> doc = to_sarif([f])
    >>> doc["version"], doc["runs"][0]["results"][0]["ruleId"]
    ('2.1.0', 'RPL020')
    >>> doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
    ...     "region"]["startColumn"]
    1
    """
    by_code = {r.code: r for r in all_rules()}
    used_codes = sorted({f.code for f in findings})
    rules: List[Dict[str, object]] = []
    index: Dict[str, int] = {}
    for i, code in enumerate(used_codes):
        index[code] = i
        rule = by_code.get(code)
        name = rule.name if rule is not None else code.lower()
        description = rule.description if rule is not None else ""
        rules.append(
            {
                "id": code,
                "name": name,
                "shortDescription": {"text": name},
                "fullDescription": {"text": description or name},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results: List[Dict[str, object]] = []
    for f in sorted(findings):
        results.append(
            {
                "ruleId": f.code,
                "ruleIndex": index[f.code],
                "level": "error",
                "message": {"text": f"[{f.name}] {f.message}"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(f.line, 1),
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": _SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": _INFO_URI,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """The SARIF document as a deterministic JSON string.

    >>> out = render_sarif([])
    >>> json.loads(out)["runs"][0]["results"]
    []
    """
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True) + "\n"
